"""The algebra executor: batched, id-space evaluation over a graph.

The seed engine evaluated every operator tuple-at-a-time through recursive
generators, copying a ``dict`` per extended binding and decoding ids back
to terms at the BGP boundary — so joins, DISTINCT, and GROUP BY churned on
decoded term objects.  This executor instead pushes *columnar batches of
integer ids* (:class:`~repro.sparql.batch.BindingBatch`) through the whole
algebra tree:

* BGPs are evaluated as batched index probes: each triple pattern is
  probed once per **distinct** bound prefix (not once per row) and the
  matches are fanned back out with a hash join on the prefix;
* Join/OPTIONAL evaluate their right side under a *deduplicated*
  projection of the left batch onto the shared variables, then hash-join
  the result back through the provenance array;
* FILTER, BIND, ORDER BY keys, and aggregate operands are evaluated once
  per distinct operand-id tuple; DISTINCT and GROUP BY keys never leave
  id-space;
* terms are decoded only at the expression/projection boundary, through a
  lazy per-query decode cache.

Terms produced by expressions (BIND values, aggregate results, VALUES
constants unknown to the store) are interned into a private overlay with
negative ids so id equality stays term equality end to end.

Compiled id-space BGP plans (constant ids + greedy probe order) are cached
per graph version, so re-running a prepared workload skips recompilation.

The tuple-at-a-time semantics are preserved exactly; the retained
:class:`~repro.sparql.reference.ReferenceExecutor` is the oracle the parity
suite checks against, and the engine EXISTS is delegated to (EXISTS wants
streaming early termination under a single concrete binding).
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Iterator, Optional

from ..errors import ExpressionError, QueryEvaluationError
from ..obs import metrics as _metrics
from ..obs import tracing as _tracing
from ..rdf.graph import Graph
from ..rdf.terms import Term, Variable, typed_literal
from ..rdf.triples import TriplePattern
from .aggregates import make_accumulator
from .algebra import AlgebraOp, BGPOp, DistinctOp, ExtendOp, FilterOp, \
    GroupOp, JoinOp, LeftJoinOp, OrderByOp, ProjectOp, SliceOp, TableOp, \
    UnionOp, UnitOp, translate_group
from .ast import AggregateExpr, AndExpr, ArithExpr, CompareExpr, ExistsExpr, \
    Expression, FuncCall, GroupPattern, InExpr, NegExpr, NotExpr, OrExpr, \
    TermExpr, VarExpr
from .batch import BindingBatch, dedup_rows
from .expr import EvalContext, evaluate, evaluate_ebv
from .values import numeric_result, order_key, to_number

try:  # the vectorized probe paths want numpy, but never require it
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

__all__ = ["Executor"]

Binding = dict[Variable, Term]

#: Memo sentinel for "operand evaluation raised ExpressionError".
_EVAL_ERROR = object()

# Observability instruments for the executor's hot seams.  Disabled (the
# default) every seam costs one `_REG.enabled` attribute read; the
# instruments only accumulate while the registry is switched on.
_REG = _metrics.registry()
_TRACER = _tracing.tracer()
_BGP_PLAN_HITS = _REG.counter(
    "engine_bgp_plan_cache_hits_total",
    "compiled id-space BGP plan reused from the per-version cache")
_BGP_PLAN_MISSES = _REG.counter(
    "engine_bgp_plan_cache_misses_total",
    "BGP plans compiled fresh (cold cache or graph version moved)")
_DECODE_MEMO_HITS = _REG.counter(
    "engine_decode_memo_hits_total",
    "per-row expression rows answered from the distinct-id memo")
_DECODE_MEMO_MISSES = _REG.counter(
    "engine_decode_memo_misses_total",
    "distinct id tuples that actually decoded + evaluated")
_PROBE_KEYS = _REG.counter(
    "engine_probe_keys_total",
    "distinct probe keys fanned out to the triple index")
_PROBE_ROWS = _REG.counter(
    "engine_probe_rows_total",
    "batch rows entering BGP index probes")
_PROBE_BULK = _REG.counter(
    "engine_probe_bulk_total",
    "whole-batch probes answered by vectorized store kernels",
    labels=("kernel",))


class _OpStats:
    """Per-operator accumulator for EXPLAIN ANALYZE runs."""

    __slots__ = ("calls", "seconds", "rows_in", "rows_out")

    def __init__(self) -> None:
        self.calls = 0
        self.seconds = 0.0
        self.rows_in = 0
        self.rows_out = 0


class Executor:
    """Evaluates algebra trees against one graph, a batch at a time."""

    def __init__(self, graph: Graph) -> None:
        self._graph = graph
        self._dict = graph.dictionary
        # Vectorized probe/fold paths: only when the storage backend
        # exposes the bulk kernel API (columnar) and numpy is importable.
        self._vec = bool(_np is not None
                         and getattr(graph.store, "vectorized", False))
        # Overlay interning for query-computed terms: ids -1, -2, ...
        self._extra_by_term: dict[Term, int] = {}
        self._extra_by_id: list[Term] = []
        # Compiled id-space BGP plans, invalidated on graph mutation.
        self._bgp_cache: dict[tuple, object] = {}
        self._bgp_cache_version = -1
        # id → numeric value / order key, stable for the executor's
        # lifetime (ids are append-only in both dictionary and overlay).
        self._num_cache: dict[int, object] = {}
        self._num_tbl = None  # id-indexed float64 view of _num_cache
        self._okey_cache: dict[int, tuple] = {}
        # EXISTS: compiled per group pattern (keyed on the frozen group
        # itself — the strong reference rules out id-reuse staleness) and
        # evaluated by the streaming reference executor for early exit.
        self._exists_cache: dict[GroupPattern, AlgebraOp] = {}
        self._reference = None
        self._ctx = EvalContext(exists=self._exists)
        # EXPLAIN ANALYZE: {id(op): _OpStats} while an explained run is
        # active, else None (the disabled fast path in _eval).
        self._explain: Optional[dict[int, _OpStats]] = None

    # -- term ↔ id bridging ---------------------------------------------------

    def encode_term(self, term: Term) -> int:
        """The id of ``term``: its dictionary id, or a negative overlay id."""
        tid = self._dict.lookup(term)
        if tid is not None:
            return tid
        tid = self._extra_by_term.get(term)
        if tid is None:
            self._extra_by_id.append(term)
            tid = -len(self._extra_by_id)
            self._extra_by_term[term] = tid
        return tid

    def decode_id(self, tid: int) -> Term:
        """The term for an id from either the dictionary or the overlay."""
        if tid >= 0:
            return self._dict.decode(tid)
        return self._extra_by_id[-tid - 1]

    # -- public API -----------------------------------------------------------

    def run(self, op: AlgebraOp, seed: Binding | None = None
            ) -> Iterator[Binding]:
        """Stream the solutions of ``op``, optionally under a seed binding.

        Kept for API compatibility with the seed engine: the batch is
        materialized first, then decoded row by row (unbound variables are
        absent from the yielded dicts, as before).
        """
        batch = self.run_ids(op, seed)
        variables = batch.variables
        decode = self.decode_id
        cache: dict[int, Term] = {}

        def rows() -> Iterator[Binding]:
            columns = batch.columns
            for i in range(len(batch)):
                out: Binding = {}
                for var, col in zip(variables, columns):
                    tid = col[i]
                    if tid is None:
                        continue
                    term = cache.get(tid)
                    if term is None:
                        term = decode(tid)
                        cache[tid] = term
                    out[var] = term
                yield out

        return rows()

    def run_ids(self, op: AlgebraOp, seed: Binding | None = None
                ) -> BindingBatch:
        """Evaluate ``op`` and return the raw id-space result batch."""
        if not _TRACER.enabled:
            return self._eval(op, self._seed_batch(seed))
        with _TRACER.span("executor.run", op=type(op).__name__) as sp:
            batch = self._eval(op, self._seed_batch(seed))
            sp.set_tag("rows_out", len(batch))
            return batch

    def run_ids_explained(self, op: AlgebraOp, seed: Binding | None = None
                          ) -> tuple[BindingBatch, dict[int, _OpStats]]:
        """Evaluate ``op`` with per-operator timing (EXPLAIN ANALYZE).

        Returns the result batch plus ``{id(op): stats}`` records for
        every operator dispatched; fold them back onto the plan with
        :func:`repro.obs.explain.build_query_explain`.
        """
        if self._explain is not None:
            raise QueryEvaluationError(
                "explained evaluation is not re-entrant")
        records: dict[int, _OpStats] = {}
        self._explain = records
        try:
            batch = self.run_ids(op, seed)
        finally:
            self._explain = None
        return batch, records

    def group_table(self, op: AlgebraOp, keys: tuple[Variable, ...],
                    operand: Optional[Variable], kind: str,
                    keep_max: bool = False) -> "GroupTable":
        """Evaluate ``op`` once and fold the raw id batch into a group table.

        This is the shared-scan entry point of rollup materialization:
        the facet pattern runs through the pipeline exactly once, and the
        result batch is aggregated at the grain of ``keys`` *before any
        term is decoded* — only distinct operand ids cross the term
        boundary (for numeric/order coercion).  Coarser granularities
        derive from the returned table via :meth:`GroupTable.project`
        instead of re-running the query.
        """
        from .grouptable import GroupTable
        batch = self.run_ids(op)
        return GroupTable.from_batch(self, batch, keys, operand, kind,
                                     keep_max)

    def run_batch(self, op: AlgebraOp, seed: BindingBatch) -> BindingBatch:
        """Evaluate ``op`` under an explicit id-space seed batch.

        The result batch's provenance array maps every output row back to
        the seed row it extends.  This is the delta-evaluation entry
        point: incremental view maintenance seeds the pipeline with
        batches derived from changed triples and reads the provenance to
        attribute matches (and their signed weights) to delta rows.
        """
        return self._eval(op, seed)

    def _seed_batch(self, seed: Binding | None) -> BindingBatch:
        if not seed:
            return BindingBatch.unit()
        variables = tuple(seed)
        columns = [[self.encode_term(seed[v])] for v in variables]
        return BindingBatch(variables, columns, [0])

    def _exists(self, group: GroupPattern, binding: Binding) -> bool:
        op = self._exists_cache.get(group)
        if op is None:
            op = translate_group(group)
            self._exists_cache[group] = op
        if self._reference is None:
            from .reference import ReferenceExecutor
            self._reference = ReferenceExecutor(self._graph)
        for _ in self._reference.run(op, binding):
            return True
        return False

    # -- dispatch ------------------------------------------------------------

    def _eval(self, op: AlgebraOp, seed: BindingBatch) -> BindingBatch:
        records = self._explain
        if records is None:
            return self._eval_inner(op, seed)
        start = perf_counter()
        out = self._eval_inner(op, seed)
        elapsed = perf_counter() - start
        stats = records.get(id(op))
        if stats is None:
            records[id(op)] = stats = _OpStats()
        stats.calls += 1
        stats.seconds += elapsed
        stats.rows_in += len(seed)
        stats.rows_out += len(out)
        return out

    def _eval_inner(self, op: AlgebraOp, seed: BindingBatch) -> BindingBatch:
        if isinstance(op, UnitOp):
            return seed.renumbered()
        if isinstance(op, BGPOp):
            return self._eval_bgp(op.patterns, seed)
        if isinstance(op, JoinOp):
            left = self._eval(op.left, seed)
            return self._bind_right(op.right, left, outer=False)
        if isinstance(op, LeftJoinOp):
            left = self._eval(op.left, seed)
            return self._bind_right(op.right, left, outer=True)
        if isinstance(op, FilterOp):
            return self._eval_filter(op, seed)
        if isinstance(op, UnionOp):
            return self._eval_union(op, seed)
        if isinstance(op, ExtendOp):
            return self._eval_extend(op, seed)
        if isinstance(op, TableOp):
            return self._eval_table(op, seed)
        if isinstance(op, GroupOp):
            return self._eval_groupby(op, seed)
        if isinstance(op, ProjectOp):
            return self._eval_project(op, seed)
        if isinstance(op, DistinctOp):
            return self._eval_distinct(op, seed)
        if isinstance(op, OrderByOp):
            return self._eval_orderby(op, seed)
        if isinstance(op, SliceOp):
            child = self._eval(op.child, seed)
            stop = None if op.limit is None else op.offset + op.limit
            return child.gather(range(len(child))[op.offset:stop])
        raise QueryEvaluationError(f"unknown operator {type(op).__name__}")

    # -- basic graph patterns -------------------------------------------------

    def _compiled_bgp(self, patterns: tuple[TriplePattern, ...],
                      seed_vars: tuple[Variable, ...]):
        """The cached id-space plan for ``patterns`` under ``seed_vars``.

        Returns ``(specs, order)`` or ``None`` when a constant term is not
        in the dictionary (the BGP can match nothing).  Cache entries are
        keyed on the pattern tuple plus the seed-variable overlap and are
        dropped wholesale when the graph version moves.
        """
        graph = self._graph
        if graph.version != self._bgp_cache_version:
            self._bgp_cache.clear()
            self._bgp_cache_version = graph.version

        pattern_vars: set[Variable] = set()
        for p in patterns:
            pattern_vars.update(p.variables())
        key = (patterns, frozenset(v for v in seed_vars if v in pattern_vars))
        if key in self._bgp_cache:
            if _REG.enabled:
                _BGP_PLAN_HITS.inc()
            return self._bgp_cache[key]
        if _REG.enabled:
            _BGP_PLAN_MISSES.inc()

        dictionary = self._dict
        compiled: Optional[tuple] = None
        specs: list[list[tuple[str, object]]] = []
        possible = True
        for p in patterns:
            spec: list[tuple[str, object]] = []
            for position in p:
                if isinstance(position, Variable):
                    spec.append(("v", position))
                else:
                    tid = dictionary.lookup(position)
                    if tid is None:
                        possible = False
                        break
                    spec.append(("c", tid))
            if not possible:
                break
            specs.append(spec)
        if possible:
            compiled = (specs, self._plan_order(specs, key[1]))
        self._bgp_cache[key] = compiled
        return compiled

    def _plan_order(self, specs: list[list[tuple[str, object]]],
                    seed_vars: frozenset[Variable]) -> list[int]:
        """Greedy selectivity ordering of BGP patterns.

        The base estimate is the exact count of the pattern's constant
        skeleton; each position whose variable will already be bound when
        the pattern runs (from the seed batch or an earlier pattern)
        divides the estimate — bound joins are selective.
        """
        graph = self._graph
        base: list[int] = []
        for spec in specs:
            ids = [payload if kind == "c" else None for kind, payload in spec]
            base.append(graph.count_ids(*ids))  # type: ignore[arg-type]

        remaining = list(range(len(specs)))
        bound_vars: set[Variable] = set(seed_vars)
        order: list[int] = []
        while remaining:
            def score(i: int) -> float:
                estimate = float(base[i])
                for kind, payload in specs[i]:
                    if kind == "v" and payload in bound_vars:
                        estimate /= 20.0
                return estimate

            best = min(remaining, key=score)
            order.append(best)
            remaining.remove(best)
            for kind, payload in specs[best]:
                if kind == "v":
                    bound_vars.add(payload)  # type: ignore[arg-type]
        return order

    def _eval_bgp(self, patterns: tuple[TriplePattern, ...],
                  seed: BindingBatch) -> BindingBatch:
        if not patterns:
            return seed.renumbered()
        compiled = self._compiled_bgp(patterns, seed.variables)
        cur = seed.renumbered()
        if compiled is None:
            return BindingBatch.empty(cur.variables)
        specs, order = compiled
        for i in order:
            cur = self._probe(cur, specs[i])
        return cur

    def _probe(self, cur: BindingBatch,
               spec: list[tuple[str, object]]) -> BindingBatch:
        """Extend every row of ``cur`` with the matches of one pattern.

        The pattern is probed once per *distinct* probe key (the row's
        current ids for the pattern's bound variables, ``None`` acting as
        a wildcard), and match ids are fanned back across the rows that
        share the key — a hash join between the batch and the index.
        Bound columns pass through untouched; only newly-bound (or
        partially-unbound) variables get columns built in the loop.
        """
        graph = self._graph
        n = len(cur)
        index = cur.index
        cols = cur.columns

        # Classify positions: constant id, bound-variable column, free var.
        const_ids: list[Optional[int]] = [None, None, None]
        pos_vars: list[Optional[Variable]] = [None, None, None]
        bound_cols: list[Optional[list]] = [None, None, None]
        for k, (kind, payload) in enumerate(spec):
            if kind == "c":
                const_ids[k] = payload  # type: ignore[assignment]
            else:
                pos_vars[k] = payload  # type: ignore[assignment]
                ci = index.get(payload)  # type: ignore[arg-type]
                if ci is not None:
                    bound_cols[k] = cols[ci]

        # Variables whose output column must be (re)built: new variables,
        # plus bound ones whose column has unbound holes (OPTIONAL
        # upstream).  Fully-bound columns pass through by gather/sharing.
        rebuild_vars: list[Variable] = []
        rebuild_ord: dict[Variable, int] = {}
        rebuild_first_pos: list[int] = []
        for k in (0, 1, 2):
            var = pos_vars[k]
            if var is None or var in rebuild_ord:
                continue
            col = bound_cols[k]
            if col is None or None in col:
                rebuild_ord[var] = len(rebuild_vars)
                rebuild_vars.append(var)
                rebuild_first_pos.append(k)
        pos_ord: list[Optional[int]] = [
            rebuild_ord.get(pos_vars[k]) if pos_vars[k] is not None else None
            for k in (0, 1, 2)]
        rebuild_cols: list[list] = [[] for _ in rebuild_vars]
        n_rebuild = len(rebuild_vars)

        bound_positions = [k for k in (0, 1, 2) if bound_cols[k] is not None]
        const_positions = [k for k in (0, 1, 2) if const_ids[k] is not None]

        # Columnar stores answer clean probe shapes wholesale: one
        # searchsorted pass over the whole batch instead of one index walk
        # per distinct key.  Repeated pattern variables and holey bound
        # columns need per-row wildcard semantics and stay on the loops.
        if self._vec and n:
            pattern_vars = [v for v in pos_vars if v is not None]
            if (len(set(pattern_vars)) == len(pattern_vars)
                    and all(pos_ord[k] is None for k in bound_positions)):
                out = self._probe_bulk(cur, n, const_ids, bound_cols,
                                       bound_positions, const_positions,
                                       rebuild_vars, rebuild_first_pos)
                if out is not None:
                    return out

        # Group rows by the values of the bound positions only — the
        # constants are shared by every row and stay out of the hash key.
        groups: dict = {}
        if not bound_positions:
            groups[None] = range(n) if n else []
        elif len(bound_positions) == 1:
            for i, key in enumerate(bound_cols[bound_positions[0]]):
                group = groups.get(key)
                if group is None:
                    groups[key] = [i]
                else:
                    group.append(i)
        else:
            for i, key in enumerate(zip(
                    *(bound_cols[k] for k in bound_positions))):
                group = groups.get(key)
                if group is None:
                    groups[key] = [i]
                else:
                    group.append(i)

        if _REG.enabled:
            _PROBE_ROWS.inc(n)
            _PROBE_KEYS.inc(len(groups))

        out_index: list[int] = []

        # Fast path — one clean bound column, one constant, one fresh
        # variable: each group is a single hoisted index-leaf lookup.
        if (len(bound_positions) == 1 and len(const_positions) == 1
                and n_rebuild == 1
                and pos_ord[bound_positions[0]] is None):
            bpos = bound_positions[0]
            fpos = rebuild_first_pos[0]
            leaf = graph.pair_adjacency(bpos, fpos,
                                        const_ids[const_positions[0]])
            free_col = rebuild_cols[0]
            for key, rows in groups.items():
                values = leaf(key)
                if not values:
                    continue
                values = list(values)
                m = len(values)
                if m == 1:
                    out_index.extend(rows)
                    free_col.extend(values * len(rows))
                else:
                    for r in rows:
                        out_index.extend([r] * m)
                    free_col.extend(values * len(rows))
        else:
            out_index = self._probe_general(
                graph, groups, const_ids, pos_vars, bound_positions,
                pos_ord, rebuild_first_pos, rebuild_cols)

        # Assemble: rebuilt columns were made in the loop; every other
        # column (and provenance) is gathered through out_index — unless
        # the probe kept every row in place (the common one-match-per-row
        # case), where untouched columns are simply shared.
        identity = len(out_index) == n and out_index == list(range(n))
        out_vars = list(cur.variables)
        out_cols: list[list] = []
        for var in cur.variables:
            ordinal = rebuild_ord.get(var)
            if ordinal is not None:
                out_cols.append(rebuild_cols[ordinal])
            elif identity:
                out_cols.append(cols[index[var]])
            else:
                col = cols[index[var]]
                out_cols.append([col[i] for i in out_index])
        for ordinal, var in enumerate(rebuild_vars):
            if var not in index:
                out_vars.append(var)
                out_cols.append(rebuild_cols[ordinal])
        prov = cur.prov
        return BindingBatch(tuple(out_vars), out_cols,
                            prov if identity else [prov[i] for i in out_index])

    def _bulk_gather(self, columns, prov: list, rows) -> tuple[list, list]:
        """Gather batch columns + provenance through a numpy row index.

        Clean int columns gather in C; holey ones (None from OPTIONAL
        upstream) fall back to the python loop per column.
        """
        np = _np
        idx = None
        out_cols = []
        for col in columns:
            try:
                arr = np.asarray(col, dtype=np.int64)
            except (TypeError, ValueError):
                if idx is None:
                    idx = rows.tolist()
                out_cols.append([col[i] for i in idx])
                continue
            out_cols.append(arr[rows].tolist())
        out_prov = np.asarray(prov, dtype=np.int64)[rows].tolist()
        return out_cols, out_prov

    def _probe_bulk(self, cur: BindingBatch, n: int,
                    const_ids: list[Optional[int]],
                    bound_cols: list[Optional[list]],
                    bound_positions: list[int],
                    const_positions: list[int],
                    rebuild_vars: list[Variable],
                    rebuild_first_pos: list[int]
                    ) -> Optional[BindingBatch]:
        """One searchsorted pass for the whole batch (columnar stores).

        Covers the vectorizable probe shapes: constant-skeleton scans,
        leaf probes (one bound + one constant), a-range probes (one
        bound, two free), packed pair probes (two bound, one free), and
        existence masks (one bound + two constants).  Every rebuilt
        variable is fresh in these shapes (a bound one would make its
        column holey, which the caller already excluded), so match ids
        gather straight out of the store's sorted columns.  Returns
        ``None`` when the shape is outside the kernels' reach.
        """
        np = _np
        store = self._graph.store
        nb = len(bound_positions)
        nc = len(const_positions)
        nf = len(rebuild_vars)
        prov = cur.prov

        if nb == 0:
            # Constant skeleton: every row sees the same matches.
            count, value_cols = store.bulk_scan(tuple(const_ids))
            if _REG.enabled:
                _PROBE_ROWS.inc(n)
                _PROBE_KEYS.inc(1)
                _PROBE_BULK.inc(1, ("scan",))
            new_vars = tuple(rebuild_vars)
            if count == 0:
                return BindingBatch.empty(cur.variables + new_vars)
            if count == 1:
                out_cols = list(cur.columns)
                for k in rebuild_first_pos:
                    out_cols.append([int(value_cols[k][0])] * n)
                return BindingBatch(cur.variables + new_vars, out_cols, prov)
            rows = np.repeat(np.arange(n), count)
            out_cols, out_prov = self._bulk_gather(cur.columns, prov, rows)
            for k in rebuild_first_pos:
                out_cols.append(np.tile(value_cols[k], n).tolist())
            return BindingBatch(cur.variables + new_vars, out_cols, out_prov)

        if nb == 1 and nc == 2 and nf == 0:
            # Fully grounded per row: a membership mask.
            keys = np.asarray(bound_cols[bound_positions[0]], dtype=np.int64)
            mask = store.bulk_exists(bound_positions[0], tuple(const_ids),
                                     keys)
            if _REG.enabled:
                _PROBE_ROWS.inc(n)
                _PROBE_KEYS.inc(int(np.unique(keys).size))
                _PROBE_BULK.inc(1, ("exists",))
            if mask.all():
                return cur
            rows = np.flatnonzero(mask)
            out_cols, out_prov = self._bulk_gather(cur.columns, prov, rows)
            return BindingBatch(cur.variables, out_cols, out_prov)

        if (nb == 1 and (nc, nf) in ((1, 1), (0, 2))) \
                or (nb == 2 and nc == 0 and nf == 1):
            key_arrays = [np.asarray(bound_cols[k], dtype=np.int64)
                          for k in bound_positions]
            starts, ends, value_cols = store.bulk_probe(
                tuple(bound_positions), tuple(const_ids), key_arrays)
            counts = ends - starts
            total = int(counts.sum())
            if _REG.enabled:
                _PROBE_ROWS.inc(n)
                if nb == 1:
                    _PROBE_KEYS.inc(int(np.unique(key_arrays[0]).size))
                else:
                    _PROBE_KEYS.inc(int(np.unique(
                        np.column_stack(key_arrays), axis=0).shape[0]))
                _PROBE_BULK.inc(
                    1, ("pair" if nb == 2 else "leaf" if nc else "range",))
            new_vars = tuple(rebuild_vars)
            if total == 0:
                return BindingBatch.empty(cur.variables + new_vars)
            if total == n and bool((counts == 1).all()):
                # Exactly one match per row: columns pass through shared.
                out_cols = list(cur.columns)
                for k in rebuild_first_pos:
                    out_cols.append(value_cols[k][starts].tolist())
                return BindingBatch(cur.variables + new_vars, out_cols, prov)
            # Ragged gather: row i contributes counts[i] output rows whose
            # match ids are the store rows [starts[i], ends[i]).
            out_rows = np.repeat(np.arange(n), counts)
            prev = np.cumsum(counts) - counts
            gather = (np.arange(total) - np.repeat(prev, counts)
                      + np.repeat(starts, counts))
            out_cols, out_prov = self._bulk_gather(cur.columns, prov,
                                                   out_rows)
            for k in rebuild_first_pos:
                out_cols.append(value_cols[k][gather].tolist())
            return BindingBatch(cur.variables + new_vars, out_cols, out_prov)
        return None

    def _probe_general(self, graph: Graph, groups: dict,
                       const_ids: list[Optional[int]],
                       pos_vars: list[Optional[Variable]],
                       bound_positions: list[int],
                       pos_ord: list[Optional[int]],
                       rebuild_first_pos: list[int],
                       rebuild_cols: list[list]) -> list[int]:
        """The general probe loop: any mix of wildcards per group."""
        out_index: list[int] = []
        n_rebuild = len(rebuild_cols)
        match_ids = graph.match_ids
        adjacent_ids = graph.adjacent_ids
        count_ids = graph.count_ids
        single_bound = len(bound_positions) == 1

        for group_key, rows in groups.items():
            probe: list[Optional[int]] = list(const_ids)
            if single_bound:
                probe[bound_positions[0]] = group_key
            elif bound_positions:
                for k, value in zip(bound_positions, group_key):
                    probe[k] = value
            free = [k for k in (0, 1, 2)
                    if probe[k] is None and pos_vars[k] is not None]
            nrows = len(rows)

            if not free:
                # Fully bound: a pure existence probe.
                if not count_ids(probe[0], probe[1], probe[2]):
                    continue
                out_index.extend(rows)
                for ordinal in range(n_rebuild):
                    rebuild_cols[ordinal].extend(
                        [probe[rebuild_first_pos[ordinal]]] * nrows)
                continue

            if len(free) == 1:
                # One wildcard: the index leaf set *is* the match list.
                values = adjacent_ids(probe[0], probe[1], probe[2])
                if not values:
                    continue
                values = list(values)
                m = len(values)
                for r in rows:
                    out_index.extend([r] * m)
                filled = pos_ord[free[0]]
                rebuild_cols[filled].extend(values * nrows)  # type: ignore
                for ordinal in range(n_rebuild):
                    if ordinal != filled:
                        rebuild_cols[ordinal].extend(
                            [probe[rebuild_first_pos[ordinal]]] * (nrows * m))
                continue

            # Two or three wildcards: walk the index, keeping repeated-
            # variable positions consistent.
            free_vars = [pos_vars[k] for k in free]
            duplicated = len(set(free_vars)) != len(free_vars)
            collected: list[list[int]] = [[] for _ in free]
            for ids in match_ids(probe[0], probe[1], probe[2]):
                if duplicated:
                    seen: dict[Variable, int] = {}
                    ok = True
                    for k in free:
                        var = pos_vars[k]
                        prev = seen.get(var)  # type: ignore[arg-type]
                        if prev is None:
                            seen[var] = ids[k]  # type: ignore[index]
                        elif prev != ids[k]:
                            ok = False
                            break
                    if not ok:
                        continue
                for j, k in enumerate(free):
                    collected[j].append(ids[k])
            m = len(collected[0])
            if not m:
                continue
            for r in rows:
                out_index.extend([r] * m)
            filled_ords: set[int] = set()
            for j, k in enumerate(free):
                ordinal = pos_ord[k]
                if ordinal in filled_ords:  # repeated free var: one column
                    continue
                filled_ords.add(ordinal)  # type: ignore[arg-type]
                rebuild_cols[ordinal].extend(collected[j] * nrows)  # type: ignore
            for ordinal in range(n_rebuild):
                if ordinal not in filled_ords:
                    rebuild_cols[ordinal].extend(
                        [probe[rebuild_first_pos[ordinal]]] * (nrows * m))
        return out_index

    # -- joins -----------------------------------------------------------------

    def _bind_right(self, right_op: AlgebraOp, left: BindingBatch,
                    outer: bool) -> BindingBatch:
        """Join ``left`` with ``right_op`` (outer = OPTIONAL semantics).

        The right side is evaluated under the *deduplicated* projection of
        the left batch onto the variables the right side can observe, then
        hash-joined back onto the full left batch via provenance — the
        right subtree runs once per distinct shared-variable combination
        instead of once per left row.
        """
        mentioned = _op_variables(right_op)
        if mentioned is None:
            shared = left.variables
        else:
            shared = tuple(v for v in left.variables if v in mentioned)

        keys = left.key_tuples(shared)
        by_key, row_map = dedup_rows(keys)
        seed_cols: list[list] = [[] for _ in shared]
        for key in by_key:
            for col, value in zip(seed_cols, key):
                col.append(value)
        sub_seed = BindingBatch(shared, seed_cols,
                                list(range(len(by_key))))
        right = self._eval(right_op, sub_seed)

        matches: dict[int, list[int]] = {}
        for j, s in enumerate(right.prov):
            bucket = matches.get(s)
            if bucket is None:
                matches[s] = [j]
            else:
                bucket.append(j)

        left_set = left.index
        right_only = tuple(v for v in right.variables if v not in left_set)
        out_left: list[int] = []
        out_right: list[Optional[int]] = []  # None = unmatched outer row
        for i in range(len(left)):
            bucket = matches.get(row_map[i])
            if bucket:
                for j in bucket:
                    out_left.append(i)
                    out_right.append(j)
            elif outer:
                out_left.append(i)
                out_right.append(None)

        out_vars = left.variables + right_only
        out_cols: list[list] = []
        right_index = right.index
        for var in left.variables:
            lcol = left.columns[left_set[var]]
            k = right_index.get(var)
            if k is None:
                out_cols.append([lcol[i] for i in out_left])
            else:
                # A shared variable may be unbound on the left (OPTIONAL
                # upstream) and bound by the right side.
                rcol = right.columns[k]
                out_cols.append([
                    lcol[i] if lcol[i] is not None or j is None else rcol[j]
                    for i, j in zip(out_left, out_right)])
        for var in right_only:
            rcol = right.columns[right_index[var]]
            out_cols.append([None if j is None else rcol[j]
                             for j in out_right])
        prov = left.prov
        return BindingBatch(out_vars, out_cols, [prov[i] for i in out_left])

    def _eval_union(self, op: UnionOp, seed: BindingBatch) -> BindingBatch:
        branches = [self._eval(b, seed) for b in op.branches]
        out_vars: list[Variable] = []
        seen: set[Variable] = set()
        for b in branches:
            for v in b.variables:
                if v not in seen:
                    seen.add(v)
                    out_vars.append(v)
        out_cols: list[list] = [[] for _ in out_vars]
        prov: list[int] = []
        for b in branches:
            n = len(b)
            for col, var in zip(out_cols, out_vars):
                k = b.index.get(var)
                if k is None:
                    col.extend([None] * n)
                else:
                    col.extend(b.columns[k])
            prov.extend(b.prov)
        return BindingBatch(tuple(out_vars), out_cols, prov)

    def _eval_table(self, op: TableOp, seed: BindingBatch) -> BindingBatch:
        encode = self.encode_term
        enc_rows = [tuple(None if t is None else encode(t) for t in row)
                    for row in op.rows]
        tvars = op.variables
        new_vars = tuple(v for v in tvars if v not in seed.index)
        out_vars = seed.variables + new_vars
        shared = [(k, seed.index[v]) for k, v in enumerate(tvars)
                  if v in seed.index]

        out_index: list[int] = []
        merged_rows: list[tuple] = []
        seed_cols = seed.columns
        for i in range(len(seed)):
            for row in enc_rows:
                compatible = True
                for tpos, spos in shared:
                    tv = row[tpos]
                    if tv is None:
                        continue
                    sv = seed_cols[spos][i]
                    if sv is not None and sv != tv:
                        compatible = False
                        break
                if compatible:
                    out_index.append(i)
                    merged_rows.append(row)

        out_cols: list[list] = []
        for var in seed.variables:
            col = seed_cols[seed.index[var]]
            if var in tvars:
                tpos = tvars.index(var)
                out_cols.append([
                    col[i] if row[tpos] is None or col[i] is not None
                    else row[tpos]
                    for i, row in zip(out_index, merged_rows)])
            else:
                out_cols.append([col[i] for i in out_index])
        for var in new_vars:
            tpos = tvars.index(var)
            out_cols.append([row[tpos] for row in merged_rows])
        prov = seed.prov
        return BindingBatch(out_vars, out_cols, [prov[i] for i in out_index])

    # -- expression evaluation over batches -----------------------------------

    def _per_row_eval(self, batch: BindingBatch,
                      needed: tuple[Variable, ...],
                      fn: Callable[[Binding], object]) -> list:
        """``fn`` applied to each row's (partial) binding, memoized per
        distinct id tuple — the expression analogue of the batched probe."""
        present = [v for v in needed if v in batch.index]
        decode = self.decode_id
        term_cache: dict[int, Term] = {}

        def binding_for(key: tuple) -> Binding:
            out: Binding = {}
            for var, tid in zip(present, key):
                if tid is None:
                    continue
                term = term_cache.get(tid)
                if term is None:
                    term = decode(tid)
                    term_cache[tid] = term
                out[var] = term
            return out

        if not present:
            value = fn({})
            return [value] * len(batch)
        cols = [batch.columns[batch.index[v]] for v in present]
        memo: dict = {}
        out_values = []
        if len(cols) == 1:
            for tid in cols[0]:
                if tid in memo:
                    out_values.append(memo[tid])
                else:
                    value = fn(binding_for((tid,)))
                    memo[tid] = value
                    out_values.append(value)
            if _REG.enabled:
                _DECODE_MEMO_MISSES.inc(len(memo))
                _DECODE_MEMO_HITS.inc(len(out_values) - len(memo))
            return out_values
        for key in zip(*cols):
            if key in memo:
                out_values.append(memo[key])
            else:
                value = fn(binding_for(key))
                memo[key] = value
                out_values.append(value)
        if _REG.enabled:
            _DECODE_MEMO_MISSES.inc(len(memo))
            _DECODE_MEMO_HITS.inc(len(out_values) - len(memo))
        return out_values

    def _needed_vars(self, batch: BindingBatch,
                     expr: Expression) -> tuple[Variable, ...]:
        """The batch variables an expression evaluation can observe.

        EXISTS sub-groups may reference any outer variable (including some
        its ``variables()`` summary misses, e.g. filter-only mentions), so
        their presence widens the slice to the whole row.
        """
        if _mentions_exists(expr):
            return batch.variables
        evars = expr.variables()
        return tuple(v for v in batch.variables if v in evars)

    def _eval_filter(self, op: FilterOp, seed: BindingBatch) -> BindingBatch:
        child = self._eval(op.child, seed)
        expr = op.expression
        ctx = self._ctx
        flags = self._per_row_eval(
            child, self._needed_vars(child, expr),
            lambda binding: evaluate_ebv(expr, binding, ctx))
        keep = [i for i, flag in enumerate(flags) if flag]
        if len(keep) == len(child):
            return child
        return child.gather(keep)

    def _eval_extend(self, op: ExtendOp, seed: BindingBatch) -> BindingBatch:
        child = self._eval(op.child, seed)
        k = child.index.get(op.var)
        if k is not None and any(v is not None for v in child.columns[k]):
            raise QueryEvaluationError(
                f"BIND would rebind already-bound variable ?{op.var.name}")
        expr = op.expression
        ctx = self._ctx
        encode = self.encode_term

        if isinstance(expr, VarExpr):
            # BIND(?x AS ?y): the column is the value (common for the
            # internal aggregate variables the translator introduces).
            src = child.index.get(expr.var)
            new_col = list(child.columns[src]) if src is not None \
                else [None] * len(child)
        elif isinstance(expr, TermExpr):
            tid = encode(expr.term)
            new_col = [tid] * len(child)
        else:
            def compute(binding: Binding) -> Optional[int]:
                try:
                    value = evaluate(expr, binding, ctx)
                except ExpressionError:
                    return None
                return None if value is None else encode(value)

            new_col = self._per_row_eval(
                child, self._needed_vars(child, expr), compute)
        if k is not None:
            columns = list(child.columns)
            columns[k] = new_col
            return BindingBatch(child.variables, columns, child.prov)
        return BindingBatch(child.variables + (op.var,),
                            child.columns + [new_col], child.prov)

    # -- grouping -------------------------------------------------------------

    def _group_single(self, col: list, n: int) -> Optional[tuple]:
        """First-row-ordered ``({id: member rows}, gid-per-row)`` via argsort.

        The vectorized grouping kernel: one ``np.unique`` + stable
        argsort instead of n dict probes.  The second element maps each
        batch row to its group's output index so aggregate folds can
        histogram without rebuilding membership.  Returns ``None`` when
        the key column holds unbound rows (the dict loop owns None
        groups) or vectorization is off.
        """
        np = _np
        if not self._vec or not n:
            return None
        try:
            arr = np.asarray(col, dtype=np.int64)
        except (TypeError, ValueError):
            return None
        uniq, first, inverse, counts = np.unique(
            arr, return_index=True, return_inverse=True, return_counts=True)
        order = np.argsort(first, kind="stable")
        rank = np.empty(len(uniq), dtype=np.int64)
        rank[order] = np.arange(len(uniq))
        gids = rank[inverse]
        members = np.split(np.argsort(gids, kind="stable"),
                           np.cumsum(counts[order])[:-1])
        return {key: rows.tolist()
                for key, rows in zip(uniq[order].tolist(), members)}, gids

    def _group_multi(self, cols: list, n: int) -> Optional[tuple]:
        """First-row-ordered ``({id tuple: member rows}, gid-per-row)``.

        The multi-key analogue of :meth:`_group_single`: one stable
        lexsort + run detection instead of n tuple hashes.  ``None``
        anywhere (missing key column or unbound row) falls back.
        """
        np = _np
        if not self._vec or not n or not cols \
                or any(c is None for c in cols):
            return None
        try:
            arrs = [np.asarray(c, dtype=np.int64) for c in cols]
        except (TypeError, ValueError):
            return None
        # lexsort keys run least-significant first; stability keeps rows
        # of equal keys in row order, so each run leads with its first row.
        order = np.lexsort(arrs[::-1])
        sorted_cols = [a[order] for a in arrs]
        change = np.zeros(n, dtype=bool)
        change[0] = True
        for a in sorted_cols:
            change[1:] |= a[1:] != a[:-1]
        run_starts = np.flatnonzero(change)
        run_ends = np.append(run_starts[1:], n)
        first_rows = order[run_starts]
        perm = np.argsort(first_rows, kind="stable")
        inv_perm = np.empty(len(run_starts), dtype=np.int64)
        inv_perm[perm] = np.arange(len(run_starts))
        gids = np.empty(n, dtype=np.int64)
        gids[order] = inv_perm[np.cumsum(change) - 1]
        groups: dict = {}
        for gi in perm.tolist():
            lo = int(run_starts[gi])
            hi = int(run_ends[gi])
            key = tuple(int(a[lo]) for a in sorted_cols)
            groups[key] = order[lo:hi].tolist()
        return groups, gids

    def _group_counts(self, col: list, n: int) -> Optional[dict]:
        """First-row-ordered ``{id: row count}`` — the COUNT(*) fold.

        Like :meth:`_group_single` but skips materializing member lists;
        group tables folding pure row counts only need the histogram.
        """
        np = _np
        if not self._vec or not n:
            return None
        try:
            arr = np.asarray(col, dtype=np.int64)
        except (TypeError, ValueError):
            return None
        uniq, first, counts = np.unique(arr, return_index=True,
                                        return_counts=True)
        order = np.argsort(first, kind="stable")
        return dict(zip(uniq[order].tolist(), counts[order].tolist()))

    def _fold_sum_np(self, fast_col: list, member_lists: list[list[int]],
                     want_avg: bool, gids=None
                     ) -> Optional[list[Optional[int]]]:
        """Vectorized SUM/AVG over an all-integer operand column.

        Operand values live in a growable id-indexed float64 table: an id
        is decoded at most once per executor lifetime, after which the
        per-row value map is a single C gather and the per-group totals
        are histogram folds.  NaN marks a not-yet-decoded slot, +inf a
        value the scalar scan owns (unbound/non-numeric/non-integer, or
        big enough that float64 accumulation could round — the scalar
        path keeps exact poisoning and arbitrary-precision semantics).
        """
        np = _np
        n = len(fast_col)
        if not n:
            return None
        try:  # unbound (None) rows raise: the scalar scan owns poisoning
            arr = np.asarray(fast_col, dtype=np.int64)
        except (TypeError, ValueError):
            return None
        if int(arr.min()) < 0:  # overlay ids: keep the scalar scan
            return None
        tbl = self._num_tbl
        need = int(arr.max()) + 1
        if tbl is None or len(tbl) < need:
            cap = max(need, 1024 if tbl is None else 2 * len(tbl))
            fresh = np.full(cap, np.nan)
            if tbl is not None:
                fresh[:len(tbl)] = tbl
            self._num_tbl = tbl = fresh
        row_vals = tbl[arr]
        miss = np.isnan(row_vals)
        if miss.any():
            numbers = self._num_cache
            decode = self.decode_id
            for tid in np.unique(arr[miss]).tolist():
                value = numbers.get(tid)
                if value is None:
                    try:
                        value = to_number(decode(tid))
                    except ExpressionError:
                        value = _EVAL_ERROR
                    numbers[tid] = value
                if (value is _EVAL_ERROR or type(value) is not int
                        or not -2 ** 52 < value < 2 ** 52):
                    tbl[tid] = np.inf
                else:
                    tbl[tid] = float(value)
            row_vals = tbl[arr]
        # Every partial sum stays exact in float64 when the total
        # absolute mass is below 2**52 (inf rows also trip this guard).
        if float(np.abs(row_vals).sum()) >= 2.0 ** 52:
            return None
        k = len(member_lists)
        if gids is None:
            gids = np.empty(n, dtype=np.int64)
            for gi, members in enumerate(member_lists):
                gids[members] = gi
        sums = np.bincount(gids, weights=row_vals, minlength=k)
        encode = self.encode_term
        if not want_avg:
            return [encode(numeric_result(int(total)))
                    for total in sums.tolist()]
        counts = np.bincount(gids, minlength=k)
        out: list[Optional[int]] = []
        for total, count in zip(sums.tolist(), counts.tolist()):
            if count == 0:
                out.append(encode(typed_literal(0)))
            else:
                out.append(encode(typed_literal(int(total) / count)))
        return out

    def _eval_groupby(self, op: GroupOp, seed: BindingBatch) -> BindingBatch:
        child = self._eval(op.child, seed)
        n = len(child)
        single_key = len(op.keys) == 1
        gids = None
        if single_key:
            k = child.index.get(op.keys[0])
            keys = child.columns[k] if k is not None else [None] * n
            grouped = self._group_single(keys, n)
            if grouped is not None:
                groups, gids = grouped
            else:
                groups = {}
                for i, key in enumerate(keys):
                    bucket = groups.get(key)
                    if bucket is None:
                        groups[key] = [i]
                    else:
                        bucket.append(i)
        else:
            groups = None
            if self._vec:
                kcols = [child.columns[k] if (k := child.index.get(v))
                         is not None else None for v in op.keys]
                grouped = self._group_multi(kcols, n)
                if grouped is not None:
                    groups, gids = grouped
            if groups is None:
                groups = child.group_rows(op.keys)
        if not groups and not op.keys:
            groups[()] = []  # implicit single group over empty input

        member_lists = list(groups.values())
        key_cols: list[list] = [[] for _ in op.keys]
        if single_key:
            key_cols[0] = list(groups)
        else:
            for key in groups:
                for col, tid in zip(key_cols, key):
                    col.append(tid)

        agg_cols = [self._aggregate_column(child, agg, member_lists, gids)
                    for _var, agg in op.aggregates]
        out_vars = op.keys + tuple(var for var, _agg in op.aggregates)
        return BindingBatch(out_vars, key_cols + agg_cols,
                            [0] * len(member_lists))

    def _aggregate_column(self, child: BindingBatch, agg: AggregateExpr,
                          member_lists: list[list[int]],
                          gids=None) -> list[Optional[int]]:
        """One aggregate evaluated over every group, in id-space.

        Non-DISTINCT COUNT/SUM/AVG/MIN/MAX over a plain variable — the
        whole SOFOS query class — run on ids with a per-distinct-id numeric
        memo and never build accumulator objects; everything else falls
        back to the spec-faithful accumulators.
        """
        encode = self.encode_term
        operand = agg.operand
        if operand is None:  # COUNT(*)
            return [encode(typed_literal(len(members)))
                    for members in member_lists]

        fast_col: Optional[list] = None
        if not agg.distinct and isinstance(operand, VarExpr):
            k = child.index.get(operand.var)
            fast_col = child.columns[k] if k is not None \
                else [None] * len(child)

        if fast_col is not None and agg.name == "COUNT":
            if self._vec and None not in fast_col:
                # Fully-bound column: the member count is the answer.
                return [encode(typed_literal(len(members)))
                        for members in member_lists]
            return [encode(typed_literal(
                sum(1 for i in members if fast_col[i] is not None)))
                for members in member_lists]

        if fast_col is not None and agg.name in ("SUM", "AVG"):
            if self._vec:
                out = self._fold_sum_np(fast_col, member_lists,
                                        agg.name == "AVG", gids)
                if out is not None:
                    return out
            decode = self.decode_id
            numbers = self._num_cache
            out: list[Optional[int]] = []
            for members in member_lists:
                total: int | float = 0
                count = 0
                poisoned = False
                for i in members:
                    tid = fast_col[i]
                    if tid is None:  # unbound poisons SUM/AVG
                        poisoned = True
                        break
                    value = numbers.get(tid)
                    if value is None:
                        try:
                            value = to_number(decode(tid))
                        except ExpressionError:
                            value = _EVAL_ERROR
                        numbers[tid] = value
                    if value is _EVAL_ERROR:
                        poisoned = True
                        break
                    total += value  # type: ignore[operator]
                    count += 1
                if poisoned:
                    out.append(None)
                elif agg.name == "SUM":
                    out.append(encode(numeric_result(total)))
                elif count == 0:
                    out.append(encode(typed_literal(0)))
                else:
                    out.append(encode(typed_literal(total / count)))
            return out

        if fast_col is not None and agg.name in ("MIN", "MAX"):
            decode = self.decode_id
            keep_max = agg.name == "MAX"
            sort_keys = self._okey_cache
            out = []
            for members in member_lists:
                best: Optional[int] = None
                best_key: Optional[tuple] = None
                poisoned = False
                for i in members:
                    tid = fast_col[i]
                    if tid is None:  # unbound poisons MIN/MAX
                        poisoned = True
                        break
                    key = sort_keys.get(tid)
                    if key is None:
                        key = order_key(decode(tid))
                        sort_keys[tid] = key
                    if best_key is None or (key > best_key if keep_max
                                            else key < best_key):
                        best, best_key = tid, key
                out.append(None if poisoned else best)
            return out

        # Generic path: accumulators over per-row operand terms.
        ctx = self._ctx
        if fast_col is not None:
            decode = self.decode_id
            term_memo: dict[int, Term] = {}

            def term_at(i: int) -> Optional[Term]:
                tid = fast_col[i]
                if tid is None:
                    return None
                term = term_memo.get(tid)
                if term is None:
                    term = decode(tid)
                    term_memo[tid] = term
                return term

            values = None
        else:
            def compute(binding: Binding, _e=operand):
                try:
                    return evaluate(_e, binding, ctx)
                except ExpressionError:
                    return _EVAL_ERROR

            values = self._per_row_eval(
                child, self._needed_vars(child, operand), compute)

        out = []
        for members in member_lists:
            acc = make_accumulator(agg.name, agg.distinct, agg.separator)
            if values is None:
                for i in members:
                    acc.add(term_at(i))
            else:
                for i in members:
                    value = values[i]
                    acc.add(None if value is _EVAL_ERROR else value)
            result = acc.result()
            out.append(None if result is None else encode(result))
        return out

    # -- solution modifiers ---------------------------------------------------

    def _eval_project(self, op: ProjectOp, seed: BindingBatch) -> BindingBatch:
        child = self._eval(op.child, seed)
        n = len(child)
        cols = []
        for var in op.variables:
            k = child.index.get(var)
            cols.append(child.columns[k] if k is not None else [None] * n)
        return BindingBatch(op.variables, cols, child.prov)

    def _eval_distinct(self, op: DistinctOp, seed: BindingBatch
                       ) -> BindingBatch:
        child = self._eval(op.child, seed)
        seen: set[tuple] = set()
        keep: list[int] = []
        for i, row in enumerate(child.row_tuples()):
            if row not in seen:
                seen.add(row)
                keep.append(i)
        if len(keep) == len(child):
            return child
        return child.gather(keep)

    def _eval_orderby(self, op: OrderByOp, seed: BindingBatch) -> BindingBatch:
        child = self._eval(op.child, seed)
        ctx = self._ctx
        idx = list(range(len(child)))
        # Stable-sort from the least-significant condition backwards so the
        # per-condition ascending/descending flags compose correctly.
        for condition in reversed(op.conditions):
            expr = condition.expression

            def compute(binding: Binding, _e=expr) -> tuple:
                try:
                    return order_key(evaluate(_e, binding, ctx))
                except ExpressionError:
                    return (0,)

            sort_keys = self._per_row_eval(
                child, self._needed_vars(child, expr), compute)
            idx.sort(key=sort_keys.__getitem__,
                     reverse=not condition.ascending)
        return child.gather(idx)


# --------------------------------------------------------------------------
# Static analysis helpers
# --------------------------------------------------------------------------

def _mentions_exists(expr: Expression) -> bool:
    if isinstance(expr, ExistsExpr):
        return True
    if isinstance(expr, (OrExpr, AndExpr, CompareExpr, ArithExpr)):
        return _mentions_exists(expr.left) or _mentions_exists(expr.right)
    if isinstance(expr, (NotExpr, NegExpr)):
        return _mentions_exists(expr.operand)
    if isinstance(expr, FuncCall):
        return any(_mentions_exists(a) for a in expr.args)
    if isinstance(expr, InExpr):
        return (_mentions_exists(expr.operand)
                or any(_mentions_exists(o) for o in expr.options))
    if isinstance(expr, AggregateExpr):
        return expr.operand is not None and _mentions_exists(expr.operand)
    return False


def _expr_variables(expr: Expression) -> Optional[set[Variable]]:
    """Variables an expression can observe; None = potentially any (EXISTS)."""
    if _mentions_exists(expr):
        return None
    return expr.variables()


def _op_variables(op: AlgebraOp) -> Optional[set[Variable]]:
    """All variables an operator subtree can observe or bind.

    ``None`` means "cannot be determined" (an EXISTS filter may peek at any
    outer variable); callers must then assume the whole seed row matters.
    This drives the deduplicated seeding of join right-hand sides.
    """
    if isinstance(op, UnitOp):
        return set()
    if isinstance(op, BGPOp):
        out: set[Variable] = set()
        for p in op.patterns:
            out.update(p.variables())
        return out
    if isinstance(op, (JoinOp, LeftJoinOp)):
        left = _op_variables(op.left)
        right = _op_variables(op.right)
        if left is None or right is None:
            return None
        return left | right
    if isinstance(op, UnionOp):
        out = set()
        for branch in op.branches:
            sub = _op_variables(branch)
            if sub is None:
                return None
            out.update(sub)
        return out
    if isinstance(op, FilterOp):
        child = _op_variables(op.child)
        evars = _expr_variables(op.expression)
        if child is None or evars is None:
            return None
        return child | evars
    if isinstance(op, ExtendOp):
        child = _op_variables(op.child)
        evars = _expr_variables(op.expression)
        if child is None or evars is None:
            return None
        return child | evars | {op.var}
    if isinstance(op, TableOp):
        return set(op.variables)
    if isinstance(op, GroupOp):
        child = _op_variables(op.child)
        if child is None:
            return None
        out = child | set(op.keys)
        for var, agg in op.aggregates:
            out.add(var)
            if agg.operand is not None:
                evars = _expr_variables(agg.operand)
                if evars is None:
                    return None
                out.update(evars)
        return out
    if isinstance(op, ProjectOp):
        child = _op_variables(op.child)
        if child is None:
            return None
        return child | set(op.variables)
    if isinstance(op, (DistinctOp, SliceOp)):
        return _op_variables(op.child)
    if isinstance(op, OrderByOp):
        child = _op_variables(op.child)
        if child is None:
            return None
        out = set(child)
        for condition in op.conditions:
            evars = _expr_variables(condition.expression)
            if evars is None:
                return None
            out.update(evars)
        return out
    return None
