"""Abstract syntax tree for the SPARQL fragment.

The tree mirrors the surface syntax; the translation to executable algebra
(join ordering, aggregate extraction, projection) happens in
:mod:`repro.sparql.algebra`.  All nodes are frozen dataclasses so ASTs can
be hashed, cached, and compared in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..rdf.terms import Term, Variable
from ..rdf.triples import TriplePattern

__all__ = [
    "Expression", "VarExpr", "TermExpr", "OrExpr", "AndExpr", "NotExpr",
    "CompareExpr", "ArithExpr", "NegExpr", "FuncCall", "InExpr",
    "AggregateExpr", "ExistsExpr",
    "PatternElement", "BGPElement", "FilterElement", "OptionalElement",
    "UnionElement", "BindElement", "ValuesElement", "GroupPattern",
    "ProjectionItem", "OrderCondition", "SelectQuery",
    "AGGREGATE_NAMES",
]

AGGREGATE_NAMES = frozenset(
    {"COUNT", "SUM", "AVG", "MIN", "MAX", "SAMPLE", "GROUP_CONCAT"})


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------

class Expression:
    """Base class for all expression nodes."""

    __slots__ = ()

    def variables(self) -> set[Variable]:
        """All variables mentioned anywhere in the expression."""
        out: set[Variable] = set()
        _collect_vars(self, out)
        return out

    def aggregates(self) -> list["AggregateExpr"]:
        """All aggregate sub-expressions, outermost first."""
        out: list[AggregateExpr] = []
        _collect_aggs(self, out)
        return out


@dataclass(frozen=True)
class VarExpr(Expression):
    var: Variable


@dataclass(frozen=True)
class TermExpr(Expression):
    term: Term


@dataclass(frozen=True)
class OrExpr(Expression):
    left: Expression
    right: Expression


@dataclass(frozen=True)
class AndExpr(Expression):
    left: Expression
    right: Expression


@dataclass(frozen=True)
class NotExpr(Expression):
    operand: Expression


@dataclass(frozen=True)
class CompareExpr(Expression):
    op: str  # = != < <= > >=
    left: Expression
    right: Expression


@dataclass(frozen=True)
class ArithExpr(Expression):
    op: str  # + - * /
    left: Expression
    right: Expression


@dataclass(frozen=True)
class NegExpr(Expression):
    operand: Expression


@dataclass(frozen=True)
class FuncCall(Expression):
    name: str  # normalized upper-case builtin name
    args: tuple[Expression, ...]


@dataclass(frozen=True)
class InExpr(Expression):
    operand: Expression
    options: tuple[Expression, ...]
    negated: bool


@dataclass(frozen=True)
class ExistsExpr(Expression):
    """``EXISTS { ... }`` / ``NOT EXISTS { ... }`` over a group pattern."""
    group: "GroupPattern"
    negated: bool


@dataclass(frozen=True)
class AggregateExpr(Expression):
    """An aggregate call, e.g. ``SUM(?pop)`` or ``COUNT(DISTINCT ?c)``.

    ``operand is None`` encodes ``COUNT(*)``.
    """

    name: str
    operand: Optional[Expression]
    distinct: bool = False
    separator: str = " "


def _collect_vars(expr: Expression, out: set[Variable]) -> None:
    if isinstance(expr, VarExpr):
        out.add(expr.var)
    elif isinstance(expr, (OrExpr, AndExpr, CompareExpr, ArithExpr)):
        _collect_vars(expr.left, out)
        _collect_vars(expr.right, out)
    elif isinstance(expr, (NotExpr, NegExpr)):
        _collect_vars(expr.operand, out)
    elif isinstance(expr, FuncCall):
        for a in expr.args:
            _collect_vars(a, out)
    elif isinstance(expr, InExpr):
        _collect_vars(expr.operand, out)
        for a in expr.options:
            _collect_vars(a, out)
    elif isinstance(expr, AggregateExpr):
        if expr.operand is not None:
            _collect_vars(expr.operand, out)
    elif isinstance(expr, ExistsExpr):
        out.update(expr.group.variables())


def _collect_aggs(expr: Expression, out: list["AggregateExpr"]) -> None:
    if isinstance(expr, AggregateExpr):
        out.append(expr)
        return
    if isinstance(expr, (OrExpr, AndExpr, CompareExpr, ArithExpr)):
        _collect_aggs(expr.left, out)
        _collect_aggs(expr.right, out)
    elif isinstance(expr, (NotExpr, NegExpr)):
        _collect_aggs(expr.operand, out)
    elif isinstance(expr, FuncCall):
        for a in expr.args:
            _collect_aggs(a, out)
    elif isinstance(expr, InExpr):
        _collect_aggs(expr.operand, out)
        for a in expr.options:
            _collect_aggs(a, out)


# --------------------------------------------------------------------------
# Group graph patterns
# --------------------------------------------------------------------------

class PatternElement:
    """Base class for the elements of a group graph pattern."""

    __slots__ = ()


@dataclass(frozen=True)
class BGPElement(PatternElement):
    patterns: tuple[TriplePattern, ...]

    def variables(self) -> set[Variable]:
        out: set[Variable] = set()
        for p in self.patterns:
            out.update(p.variables())
        return out


@dataclass(frozen=True)
class FilterElement(PatternElement):
    expression: Expression


@dataclass(frozen=True)
class OptionalElement(PatternElement):
    group: "GroupPattern"


@dataclass(frozen=True)
class UnionElement(PatternElement):
    branches: tuple["GroupPattern", ...]


@dataclass(frozen=True)
class BindElement(PatternElement):
    expression: Expression
    var: Variable


@dataclass(frozen=True)
class ValuesElement(PatternElement):
    variables: tuple[Variable, ...]
    rows: tuple[tuple[Optional[Term], ...], ...]  # None encodes UNDEF


@dataclass(frozen=True)
class GroupPattern:
    """A ``{ ... }`` group: an ordered sequence of pattern elements."""

    elements: tuple[PatternElement, ...]

    def variables(self) -> set[Variable]:
        """Variables that may be bound by evaluating this group."""
        out: set[Variable] = set()
        for el in self.elements:
            if isinstance(el, BGPElement):
                out.update(el.variables())
            elif isinstance(el, OptionalElement):
                out.update(el.group.variables())
            elif isinstance(el, UnionElement):
                for b in el.branches:
                    out.update(b.variables())
            elif isinstance(el, BindElement):
                out.add(el.var)
            elif isinstance(el, ValuesElement):
                out.update(el.variables)
        return out

    def triple_patterns(self) -> list[TriplePattern]:
        """All triple patterns anywhere in the group (incl. nested)."""
        out: list[TriplePattern] = []
        for el in self.elements:
            if isinstance(el, BGPElement):
                out.extend(el.patterns)
            elif isinstance(el, OptionalElement):
                out.extend(el.group.triple_patterns())
            elif isinstance(el, UnionElement):
                for b in el.branches:
                    out.extend(b.triple_patterns())
        return out

    def filters(self) -> list[Expression]:
        """Top-level FILTER expressions of the group."""
        return [el.expression for el in self.elements
                if isinstance(el, FilterElement)]


# --------------------------------------------------------------------------
# Query
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ProjectionItem:
    """One SELECT item: a plain variable or ``(expression AS var)``."""

    var: Variable
    expression: Optional[Expression] = None

    @property
    def is_plain(self) -> bool:
        return self.expression is None


@dataclass(frozen=True)
class OrderCondition:
    expression: Expression
    ascending: bool = True


GroupCondition = Union[Variable, tuple[Expression, Variable]]


@dataclass(frozen=True)
class SelectQuery:
    """A parsed SELECT query.

    ``projection`` is empty iff ``star`` is True.  ``group_by`` holds plain
    variables (the fragment restricts GROUP BY to variables, matching the
    paper's query class ``SELECT X agg(u) WHERE P GROUP BY X``).
    """

    projection: tuple[ProjectionItem, ...]
    where: GroupPattern
    star: bool = False
    distinct: bool = False
    group_by: tuple[Variable, ...] = ()
    having: tuple[Expression, ...] = ()
    order_by: tuple[OrderCondition, ...] = ()
    limit: Optional[int] = None
    offset: int = 0
    text: str = field(default="", compare=False)

    @property
    def has_aggregates(self) -> bool:
        """True when projection or HAVING mention aggregates."""
        if self.group_by:
            return True
        for item in self.projection:
            if item.expression is not None and item.expression.aggregates():
                return True
        return any(h.aggregates() for h in self.having)

    def projected_variables(self) -> list[Variable]:
        """The output variables in projection order."""
        if self.star:
            return sorted(self.where.variables())
        return [item.var for item in self.projection]

    def aggregate_items(self) -> list[ProjectionItem]:
        """Projection items whose expression contains an aggregate."""
        return [item for item in self.projection
                if item.expression is not None and item.expression.aggregates()]
