"""The query-engine facade: parse once, plan once, run many times.

:class:`QueryEngine` binds a graph; :class:`PreparedQuery` carries the
parsed AST plus translated algebra and can be executed repeatedly (the
workload runner re-executes the same prepared queries across view
configurations).  ``query()`` is the convenience one-shot — and it caches
its compilations by query text, so a workload replayed as raw strings
still compiles each distinct query once.

Execution goes through the batched id-space executor: the result batch is
decoded column-wise straight into a :class:`ResultTable`, never building a
per-row binding dict.
"""

from __future__ import annotations

import time

from ..obs import metrics as _metrics
from ..rdf.graph import Graph
from ..rdf.namespace import PrefixMap
from ..rdf.terms import Variable
from .algebra import AlgebraOp, translate_query
from .ast import SelectQuery
from .batch import BindingBatch
from .executor import Executor
from .parser import parse_query
from .results import ResultTable

__all__ = ["PreparedQuery", "QueryEngine"]

#: How many distinct query texts the engine memoizes compilations for.
_PREPARED_CACHE_LIMIT = 1024

_REG = _metrics.registry()
_PREPARED_HITS = _REG.counter(
    "engine_prepared_cache_hits_total",
    "string queries answered from the prepared-query memo")
_PREPARED_MISSES = _REG.counter(
    "engine_prepared_cache_misses_total",
    "string queries parsed + translated fresh")


class PreparedQuery:
    """A parsed + translated query, executable against any engine."""

    __slots__ = ("ast", "plan")

    def __init__(self, ast: SelectQuery, plan: AlgebraOp | None = None) -> None:
        self.ast = ast
        self.plan = plan if plan is not None else translate_query(ast)

    @classmethod
    def compile(cls, text: str, prefixes: PrefixMap | None = None
                ) -> "PreparedQuery":
        return cls(parse_query(text, prefixes))

    @property
    def text(self) -> str:
        return self.ast.text

    def __repr__(self) -> str:
        names = ", ".join(f"?{v.name}" for v in self.ast.projected_variables())
        return f"<PreparedQuery SELECT {names}>"


class QueryEngine:
    """Executes SPARQL SELECT queries against one graph."""

    def __init__(self, graph: Graph, prefixes: PrefixMap | None = None) -> None:
        self._graph = graph
        self._prefixes = prefixes
        self._executor = Executor(graph)
        self._prepared: dict[str, PreparedQuery] = {}

    @property
    def graph(self) -> Graph:
        return self._graph

    @property
    def executor(self) -> Executor:
        """The engine's batched executor (id-space access for the views)."""
        return self._executor

    def prepare(self, query: str | SelectQuery | PreparedQuery
                ) -> PreparedQuery:
        """Compile a query once for repeated execution.

        String queries are memoized by text (bounded), so repeated one-shot
        ``query()`` calls over a fixed workload skip parse + translation.
        """
        if isinstance(query, PreparedQuery):
            return query
        if isinstance(query, SelectQuery):
            return PreparedQuery(query)
        prepared = self._prepared.get(query)
        if prepared is None:
            if _REG.enabled:
                _PREPARED_MISSES.inc()
            prepared = PreparedQuery.compile(query, self._prefixes)
            if len(self._prepared) >= _PREPARED_CACHE_LIMIT:
                self._prepared.pop(next(iter(self._prepared)))
            self._prepared[query] = prepared
        elif _REG.enabled:
            _PREPARED_HITS.inc()
        return prepared

    def query(self, query: str | SelectQuery | PreparedQuery) -> ResultTable:
        """Parse (if needed) and execute, returning a materialized table."""
        prepared = self.prepare(query)
        variables = prepared.ast.projected_variables()
        batch = self._executor.run_ids(prepared.plan)
        return self._decode_table(variables, batch)

    def query_ids(self, query: str | SelectQuery | PreparedQuery
                  ) -> tuple[list[Variable], BindingBatch]:
        """Execute and return the raw id-space result batch.

        The id-native consumers (view materialization) use this to avoid
        the decode→re-encode round trip; translate ids back through
        ``engine.executor.decode_id``.
        """
        prepared = self.prepare(query)
        variables = prepared.ast.projected_variables()
        return variables, self._executor.run_ids(prepared.plan)

    def _decode_table(self, variables: list[Variable],
                      batch: BindingBatch) -> ResultTable:
        if list(batch.variables) != variables:
            # Defensive realignment; plans from translate_query always end
            # in a ProjectOp matching the projection order.
            n = len(batch)
            columns = [batch.columns[batch.index[v]] if v in batch.index
                       else [None] * n for v in variables]
            batch = BindingBatch(tuple(variables), columns, batch.prov)
        return ResultTable(variables,
                           batch.decode_rows(self._executor.decode_id))

    def explain(self, query: str | SelectQuery | PreparedQuery):
        """EXPLAIN ANALYZE: execute and return the measured plan tree.

        The query runs for real (same code path as :meth:`query`, with a
        thin per-operator timing wrapper active in the executor); the
        returned :class:`~repro.obs.explain.QueryExplain` carries the
        operator tree with inclusive/exclusive wall time and row counts,
        the decoded result table, and a total wall clock comparable to
        :meth:`timed_query`.
        """
        # Imported lazily: obs.explain sits above the sparql layer.
        from ..obs.explain import build_query_explain
        prepared = self.prepare(query)
        variables = prepared.ast.projected_variables()
        start = time.perf_counter()
        batch, records = self._executor.run_ids_explained(prepared.plan)
        table = self._decode_table(variables, batch)
        total = time.perf_counter() - start
        return build_query_explain(prepared, table, records, total)

    def timed_query(self, query: str | SelectQuery | PreparedQuery
                    ) -> tuple[ResultTable, float]:
        """Execute and measure wall-clock seconds (result fully drained).

        Preparation cost is excluded when a :class:`PreparedQuery` is
        passed, which is how the benchmark harness isolates execution time
        from parse time.
        """
        prepared = self.prepare(query)
        start = time.perf_counter()
        table = self.query(prepared)
        elapsed = time.perf_counter() - start
        return table, elapsed
