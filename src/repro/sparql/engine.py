"""The query-engine facade: parse once, plan once, run many times.

:class:`QueryEngine` binds a graph; :class:`PreparedQuery` carries the
parsed AST plus translated algebra and can be executed repeatedly (the
workload runner re-executes the same prepared queries across view
configurations).  ``query()`` is the convenience one-shot.
"""

from __future__ import annotations

import time

from ..rdf.graph import Graph
from ..rdf.namespace import PrefixMap
from .algebra import AlgebraOp, translate_query
from .ast import SelectQuery
from .executor import Executor
from .parser import parse_query
from .results import ResultTable

__all__ = ["PreparedQuery", "QueryEngine"]


class PreparedQuery:
    """A parsed + translated query, executable against any engine."""

    __slots__ = ("ast", "plan")

    def __init__(self, ast: SelectQuery, plan: AlgebraOp | None = None) -> None:
        self.ast = ast
        self.plan = plan if plan is not None else translate_query(ast)

    @classmethod
    def compile(cls, text: str, prefixes: PrefixMap | None = None
                ) -> "PreparedQuery":
        return cls(parse_query(text, prefixes))

    @property
    def text(self) -> str:
        return self.ast.text

    def __repr__(self) -> str:
        names = ", ".join(f"?{v.name}" for v in self.ast.projected_variables())
        return f"<PreparedQuery SELECT {names}>"


class QueryEngine:
    """Executes SPARQL SELECT queries against one graph."""

    def __init__(self, graph: Graph, prefixes: PrefixMap | None = None) -> None:
        self._graph = graph
        self._prefixes = prefixes
        self._executor = Executor(graph)

    @property
    def graph(self) -> Graph:
        return self._graph

    def prepare(self, query: str | SelectQuery | PreparedQuery
                ) -> PreparedQuery:
        """Compile a query once for repeated execution."""
        if isinstance(query, PreparedQuery):
            return query
        if isinstance(query, SelectQuery):
            return PreparedQuery(query)
        return PreparedQuery.compile(query, self._prefixes)

    def query(self, query: str | SelectQuery | PreparedQuery) -> ResultTable:
        """Parse (if needed) and execute, returning a materialized table."""
        prepared = self.prepare(query)
        variables = prepared.ast.projected_variables()
        bindings = self._executor.run(prepared.plan)
        return ResultTable.from_bindings(variables, bindings)

    def timed_query(self, query: str | SelectQuery | PreparedQuery
                    ) -> tuple[ResultTable, float]:
        """Execute and measure wall-clock seconds (result fully drained).

        Preparation cost is excluded when a :class:`PreparedQuery` is
        passed, which is how the benchmark harness isolates execution time
        from parse time.
        """
        prepared = self.prepare(query)
        start = time.perf_counter()
        table = self.query(prepared)
        elapsed = time.perf_counter() - start
        return table, elapsed
