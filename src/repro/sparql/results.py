"""Query result tables.

A :class:`ResultTable` is an ordered, materialized SELECT result: a header
of variables plus rows of optional terms.  It supports the comparisons the
test-suite and the view-rewriting equivalence checks need (order-sensitive
and order-insensitive), and renders as aligned text for the console.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional

from ..rdf.terms import Literal, Term, Variable

__all__ = ["ResultTable"]


class ResultTable:
    """A materialized SELECT result."""

    __slots__ = ("variables", "rows")

    def __init__(self, variables: list[Variable],
                 rows: list[tuple[Optional[Term], ...]]) -> None:
        self.variables = list(variables)
        self.rows = rows

    @classmethod
    def from_bindings(cls, variables: list[Variable],
                      bindings: Iterable[dict[Variable, Term]]
                      ) -> "ResultTable":
        rows = [tuple(b.get(v) for v in variables) for b in bindings]
        return cls(variables, rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple[Optional[Term], ...]]:
        return iter(self.rows)

    def __repr__(self) -> str:
        names = ", ".join(f"?{v.name}" for v in self.variables)
        return f"<ResultTable [{names}] with {len(self.rows)} rows>"

    # -- access -----------------------------------------------------------

    def column(self, var: Variable | str) -> list[Optional[Term]]:
        """All values of one variable, in row order."""
        idx = self._index_of(var)
        return [row[idx] for row in self.rows]

    def _index_of(self, var: Variable | str) -> int:
        if isinstance(var, str):
            var = Variable(var)
        return self.variables.index(var)

    def scalar(self) -> Optional[Term]:
        """The single cell of a 1x1 result; raises ValueError otherwise."""
        if len(self.rows) != 1 or len(self.variables) != 1:
            raise ValueError(
                f"scalar() needs a 1x1 result, have {len(self.rows)}x"
                f"{len(self.variables)}")
        return self.rows[0][0]

    def python_value(self) -> Any:
        """The single cell converted to a Python value (for aggregates)."""
        cell = self.scalar()
        if cell is None:
            return None
        if isinstance(cell, Literal):
            return cell.to_python()
        return cell

    def to_dicts(self) -> list[dict[str, Optional[Term]]]:
        """Rows as name→term dicts (unbound cells included as None)."""
        names = [v.name for v in self.variables]
        return [dict(zip(names, row)) for row in self.rows]

    # -- comparison --------------------------------------------------------

    def as_multiset(self) -> dict[tuple, int]:
        """Row multiset keyed by the canonical variable order (sorted names).

        Columns are reordered canonically so two tables compare even when
        their SELECT clauses listed the variables differently, and numeric
        literals are canonicalized to their *value* — SPARQL value equality —
        so ``"60.0"^^xsd:decimal`` and ``"60.0"^^xsd:double`` (e.g. an AVG
        computed directly vs. reconstructed as SUM/COUNT) count as the same
        solution.
        """
        order = sorted(range(len(self.variables)),
                       key=lambda i: self.variables[i].name)
        out: dict[tuple, int] = {}
        for row in self.rows:
            key = tuple(_canonical_cell(row[i]) for i in order)
            out[key] = out.get(key, 0) + 1
        return out

    def same_solutions(self, other: "ResultTable") -> bool:
        """Order-insensitive equality of solutions (bag semantics)."""
        if sorted(v.name for v in self.variables) != \
                sorted(v.name for v in other.variables):
            return False
        return self.as_multiset() == other.as_multiset()

    # -- rendering -----------------------------------------------------------

    def render(self, max_rows: int = 50) -> str:
        """Aligned text table (used by the console panels)."""
        headers = [f"?{v.name}" for v in self.variables]
        body: list[list[str]] = []
        for row in self.rows[:max_rows]:
            body.append(["" if cell is None else _short(cell) for cell in row])
        widths = [len(h) for h in headers]
        for line in body:
            for i, cell in enumerate(line):
                widths[i] = max(widths[i], len(cell))
        parts = [" | ".join(h.ljust(w) for h, w in zip(headers, widths))]
        parts.append("-+-".join("-" * w for w in widths))
        for line in body:
            parts.append(" | ".join(c.ljust(w) for c, w in zip(line, widths)))
        if len(self.rows) > max_rows:
            parts.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(parts)


def _canonical_cell(term: Optional[Term]):
    """Comparison key for one cell: numeric value for numeric literals."""
    if isinstance(term, Literal) and term.is_numeric:
        try:
            return ("num", float(term.to_python()))
        except Exception:  # malformed numeric literal: fall through
            pass
    return term


def _short(term: Term) -> str:
    if isinstance(term, Literal):
        return term.lexical
    text = term.n3()
    return text if len(text) <= 60 else text[:57] + "..."
