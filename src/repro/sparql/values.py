"""SPARQL value semantics: coercion, effective boolean value, comparison.

These are the shared primitives of the expression evaluator
(:mod:`repro.sparql.expr`), the builtin functions
(:mod:`repro.sparql.functions`) and the aggregates
(:mod:`repro.sparql.aggregates`).  Expression-level type errors raise
:class:`~repro.errors.ExpressionError`, which FILTER treats as false and
aggregates treat as skip-this-binding — matching the SPARQL error model.
"""

from __future__ import annotations

import math
from typing import Any, Optional

from ..errors import ExpressionError, TermError
from ..rdf.terms import XSD, BlankNode, IRI, Literal, Term, typed_literal

__all__ = [
    "to_number", "numeric_result", "ebv", "equals", "order_key", "compare",
    "string_value",
]


def to_number(term: Optional[Term]) -> float | int:
    """Coerce a term to a Python number, or raise :class:`ExpressionError`."""
    if term is None:
        raise ExpressionError("unbound value in numeric context")
    if not isinstance(term, Literal) or not term.is_numeric:
        raise ExpressionError(f"not a numeric literal: {term!r}")
    try:
        value = term.to_python()
    except TermError as exc:
        raise ExpressionError(str(exc)) from exc
    assert isinstance(value, (int, float))
    return value


def numeric_result(value: int | float, *operands: Term) -> Literal:
    """Wrap an arithmetic result, preserving integer-ness when exact.

    Division always yields a decimal/double per the SPARQL operator table.
    """
    if isinstance(value, int):
        return Literal(str(value), XSD.integer)
    if isinstance(value, float) and value.is_integer() and all(
            isinstance(op, Literal) and op.datatype == XSD.integer
            for op in operands):
        return Literal(repr(value), XSD.decimal)
    return typed_literal(float(value))


def ebv(term: Optional[Term]) -> bool:
    """The effective boolean value (SPARQL §17.2.2).

    * boolean literals → their value;
    * numeric literals → value != 0 (NaN is false);
    * strings → non-empty;
    * everything else (IRIs, blanks, unbound) → type error.
    """
    if term is None:
        raise ExpressionError("EBV of unbound value")
    if not isinstance(term, Literal):
        raise ExpressionError(f"EBV of non-literal {term!r}")
    if term.datatype == XSD.boolean:
        try:
            return bool(term.to_python())
        except TermError:
            return False
    if term.is_numeric:
        try:
            value = term.to_python()
        except TermError:
            return False
        if isinstance(value, float) and math.isnan(value):
            return False
        return value != 0
    if term.datatype == XSD.string:
        return len(term.lexical) > 0
    raise ExpressionError(f"EBV undefined for datatype {term.datatype!r}")


def string_value(term: Optional[Term]) -> str:
    """The string form of a term for string functions (SPARQL ``STR``)."""
    if term is None:
        raise ExpressionError("STR of unbound value")
    if isinstance(term, Literal):
        return term.lexical
    if isinstance(term, IRI):
        return term.value
    raise ExpressionError("STR of blank node")


def equals(left: Optional[Term], right: Optional[Term]) -> bool:
    """SPARQL ``=``: value equality for comparable literals, else term equality."""
    if left is None or right is None:
        raise ExpressionError("comparison with unbound value")
    if isinstance(left, Literal) and isinstance(right, Literal):
        if left.is_numeric and right.is_numeric:
            return to_number(left) == to_number(right)
        if left.datatype == right.datatype and left.language == right.language:
            return left.lexical == right.lexical
        if left.datatype != right.datatype:
            # Incomparable typed literals: RDFterm-equal raises unless the
            # terms are identical.
            raise ExpressionError(
                f"incomparable literals {left!r} and {right!r}")
        return False
    return left == right


def compare(op: str, left: Optional[Term], right: Optional[Term]) -> bool:
    """Evaluate a relational operator on two terms.

    ``=``/``!=`` work on any pair of terms; the orderings ``< <= > >=``
    require both sides to be numeric, both strings, or both booleans.
    """
    if op == "=":
        return equals(left, right)
    if op == "!=":
        try:
            return not equals(left, right)
        except ExpressionError:
            # != of incomparable-but-distinct typed literals is true when the
            # terms themselves differ.
            if left is not None and right is not None and left != right:
                return True
            raise
    if left is None or right is None:
        raise ExpressionError("comparison with unbound value")
    if isinstance(left, Literal) and isinstance(right, Literal):
        if left.is_numeric and right.is_numeric:
            lv: Any = to_number(left)
            rv: Any = to_number(right)
        elif left.datatype == XSD.boolean and right.datatype == XSD.boolean:
            lv, rv = ebv(left), ebv(right)
        elif left.datatype in (XSD.string,) and right.datatype in (XSD.string,):
            lv, rv = left.lexical, right.lexical
        elif left.datatype == right.datatype:
            # Same-datatype fall-back (dates, gYear, ...): lexical order,
            # which is chronological for XSD date/time canonical forms.
            lv, rv = left.lexical, right.lexical
        else:
            raise ExpressionError(
                f"cannot order {left.datatype!r} against {right.datatype!r}")
        if op == "<":
            return lv < rv
        if op == "<=":
            return lv <= rv
        if op == ">":
            return lv > rv
        if op == ">=":
            return lv >= rv
        raise ExpressionError(f"unknown comparison operator {op!r}")
    raise ExpressionError("ordering comparison requires literals")


def order_key(term: Optional[Term]) -> tuple:
    """Total-order key for ORDER BY (unbound < blanks < IRIs < literals).

    Numeric literals order among themselves by value; other literals by
    (datatype, lexical).  This is a deterministic refinement of the partial
    order the SPARQL spec mandates.
    """
    if term is None:
        return (0,)
    if isinstance(term, BlankNode):
        return (1, term.label)
    if isinstance(term, IRI):
        return (2, term.value)
    assert isinstance(term, Literal)
    if term.is_numeric:
        try:
            value = term.to_python()
            return (3, 0, float(value), "")
        except TermError:
            pass
    return (3, 1, 0.0, term.datatype.value + "\x00" + term.lexical
            + "\x00" + (term.language or ""))
