"""The expression evaluator.

``evaluate`` maps an AST expression plus a solution binding to a term (or
``None`` for unbound-producing constructs); SPARQL type errors surface as
:class:`~repro.errors.ExpressionError` and are handled at the FILTER /
BIND / aggregate boundaries by the executor.

``EXISTS`` needs to evaluate a nested graph pattern; the executor injects
that capability through :class:`EvalContext` to avoid a circular import.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import ExpressionError
from ..rdf.terms import Term, Variable, typed_literal
from .ast import AggregateExpr, AndExpr, ArithExpr, CompareExpr, ExistsExpr, \
    Expression, FuncCall, GroupPattern, InExpr, NegExpr, NotExpr, OrExpr, \
    TermExpr, VarExpr
from .functions import LAZY_BUILTINS, call_builtin
from .values import compare, ebv, equals, numeric_result, to_number

__all__ = ["EvalContext", "evaluate", "evaluate_ebv"]

Binding = dict[Variable, Term]


class EvalContext:
    """Evaluation services an expression may need beyond its binding.

    ``exists`` is a callback ``(group, binding) -> bool`` provided by the
    executor; expressions without EXISTS never touch it.
    """

    __slots__ = ("exists",)

    def __init__(self, exists: Callable[[GroupPattern, Binding], bool] | None
                 = None) -> None:
        self.exists = exists


_EMPTY_CONTEXT = EvalContext()


def evaluate(expr: Expression, binding: Binding,
             ctx: EvalContext | None = None) -> Optional[Term]:
    """Evaluate ``expr`` under ``binding``; may raise ExpressionError."""
    if ctx is None:
        ctx = _EMPTY_CONTEXT
    if isinstance(expr, VarExpr):
        return binding.get(expr.var)
    if isinstance(expr, TermExpr):
        return expr.term
    if isinstance(expr, OrExpr):
        return _logical_or(expr, binding, ctx)
    if isinstance(expr, AndExpr):
        return _logical_and(expr, binding, ctx)
    if isinstance(expr, NotExpr):
        return typed_literal(not ebv(evaluate(expr.operand, binding, ctx)))
    if isinstance(expr, CompareExpr):
        left = evaluate(expr.left, binding, ctx)
        right = evaluate(expr.right, binding, ctx)
        return typed_literal(compare(expr.op, left, right))
    if isinstance(expr, ArithExpr):
        return _arith(expr, binding, ctx)
    if isinstance(expr, NegExpr):
        value = to_number(evaluate(expr.operand, binding, ctx))
        return numeric_result(-value)
    if isinstance(expr, InExpr):
        return _in(expr, binding, ctx)
    if isinstance(expr, FuncCall):
        return _call(expr, binding, ctx)
    if isinstance(expr, ExistsExpr):
        if ctx.exists is None:
            raise ExpressionError("EXISTS outside an executor context")
        found = ctx.exists(expr.group, binding)
        return typed_literal(not found if expr.negated else found)
    if isinstance(expr, AggregateExpr):
        raise ExpressionError(
            "aggregate evaluated outside GROUP BY context (did the algebra "
            "translation miss it?)")
    raise ExpressionError(f"unknown expression node {type(expr).__name__}")


def evaluate_ebv(expr: Expression, binding: Binding,
                 ctx: EvalContext | None = None) -> bool:
    """FILTER semantics: evaluate to effective boolean, errors become False."""
    try:
        return ebv(evaluate(expr, binding, ctx))
    except ExpressionError:
        return False


def _logical_or(expr: OrExpr, binding: Binding, ctx: EvalContext) -> Term:
    left_error: ExpressionError | None = None
    try:
        if ebv(evaluate(expr.left, binding, ctx)):
            return typed_literal(True)
    except ExpressionError as exc:
        left_error = exc
    try:
        if ebv(evaluate(expr.right, binding, ctx)):
            return typed_literal(True)
    except ExpressionError:
        raise
    if left_error is not None:
        raise left_error
    return typed_literal(False)


def _logical_and(expr: AndExpr, binding: Binding, ctx: EvalContext) -> Term:
    left_error: ExpressionError | None = None
    try:
        if not ebv(evaluate(expr.left, binding, ctx)):
            return typed_literal(False)
    except ExpressionError as exc:
        left_error = exc
    try:
        if not ebv(evaluate(expr.right, binding, ctx)):
            return typed_literal(False)
    except ExpressionError:
        raise
    if left_error is not None:
        raise left_error
    return typed_literal(True)


def _arith(expr: ArithExpr, binding: Binding, ctx: EvalContext) -> Term:
    left_term = evaluate(expr.left, binding, ctx)
    right_term = evaluate(expr.right, binding, ctx)
    left = to_number(left_term)
    right = to_number(right_term)
    if expr.op == "+":
        return numeric_result(left + right)
    if expr.op == "-":
        return numeric_result(left - right)
    if expr.op == "*":
        return numeric_result(left * right)
    if expr.op == "/":
        if right == 0:
            raise ExpressionError("division by zero")
        return numeric_result(left / right)
    raise ExpressionError(f"unknown arithmetic operator {expr.op!r}")


def _in(expr: InExpr, binding: Binding, ctx: EvalContext) -> Term:
    operand = evaluate(expr.operand, binding, ctx)
    pending_error: ExpressionError | None = None
    found = False
    for option in expr.options:
        try:
            if equals(operand, evaluate(option, binding, ctx)):
                found = True
                break
        except ExpressionError as exc:
            pending_error = exc
    if not found and pending_error is not None:
        raise pending_error
    result = found if not expr.negated else not found
    return typed_literal(result)


def _call(expr: FuncCall, binding: Binding, ctx: EvalContext) -> Optional[Term]:
    name = expr.name
    if name in LAZY_BUILTINS:
        if name == "BOUND":
            if len(expr.args) != 1 or not isinstance(expr.args[0], VarExpr):
                raise ExpressionError("BOUND requires a single variable")
            return typed_literal(expr.args[0].var in binding
                                 and binding[expr.args[0].var] is not None)
        if name == "IF":
            if len(expr.args) != 3:
                raise ExpressionError("IF requires three arguments")
            condition = ebv(evaluate(expr.args[0], binding, ctx))
            chosen = expr.args[1] if condition else expr.args[2]
            return evaluate(chosen, binding, ctx)
        if name == "COALESCE":
            for arg in expr.args:
                try:
                    value = evaluate(arg, binding, ctx)
                except ExpressionError:
                    continue
                if value is not None:
                    return value
            raise ExpressionError("COALESCE: all arguments errored/unbound")
    args = [evaluate(a, binding, ctx) for a in expr.args]
    return call_builtin(name, args)
