"""Delta evaluation: per-group aggregate adjustments from changed triples.

Given the net insert/delete set of one base-graph update window (a
:class:`~repro.rdf.changelog.GraphDelta`), this module computes how every
group of a facet's aggregation query changes — without re-running the
query over the whole graph.  The result feeds group-level view patching
(:mod:`repro.views.maintenance`).

The algorithm is the classic counting/delta-rules decomposition of a
multiway join, adapted to the batched id-space pipeline.  Writing the
facet's BGP as ``Q = R₁ ⋈ … ⋈ Rₙ`` (one relation per triple pattern) and
the signed per-pattern delta as ``ΔRᵢ`` (+1 for inserts, −1 for deletes),
the post-update state satisfies ``Rᵢ_old = Rᵢ_new − ΔRᵢ``, so

    ΔQ = Q_new − Q_old
       = Σ_{∅≠S⊆[n]} (−1)^{|S|+1} (⋈_{i∈S} ΔRᵢ) ⋈ (⋈_{i∉S} Rᵢ_new)

— every term is evaluated against the *current* graph only, which is
exactly what the executor has.  Each subset ``S`` contributes one pass:
the delta triples matching the patterns in ``S`` are joined symbolically
into a seed :class:`~repro.sparql.batch.BindingBatch` (one row per
consistent variable assignment, carrying a signed weight), the remaining
patterns run through the ordinary batched BGP probes, and the output
rows' group keys accumulate ``weight`` into Δcount and
``weight · value(u)`` into Δsum.  Subsets with ``|S| ≥ 2`` are the
inclusion–exclusion correction for bindings that touch several changed
triples at once; with small deltas they are near-empty and cheap.

SUM/COUNT/AVG adjustments are exact under both inserts and deletes (AVG
via its algebraic (sum, count) decomposition).  MIN/MAX are distributive
only under inserts: the evaluator records per-group candidate values from
inserted rows, and callers must fall back to recomputation when the
window deletes anything.
"""

from __future__ import annotations

from itertools import combinations
from typing import Optional

from ..errors import ExpressionError
from ..rdf.terms import Variable
from ..rdf.triples import TriplePattern
from .algebra import AlgebraOp, BGPOp, FilterOp, translate_group
from .ast import Expression, VarExpr
from .batch import BindingBatch
from .executor import Executor
from .grouptable import KIND_BY_AGGREGATE, KIND_COUNT, KIND_MINMAX, KIND_SUM
from .values import to_number

__all__ = ["DeltaPlan", "GroupAdjustment", "DeltaEvaluator",
           "KIND_BY_AGGREGATE", "compile_delta_plan"]

IdTriple = tuple[int, int, int]


class DeltaPlan:
    """A facet's aggregation query in delta-evaluable form.

    Only the SOFOS query class is supported: a basic graph pattern
    (optionally under group-wide FILTERs) grouped on plain variables with
    one rollup aggregate over a plain variable (or ``COUNT(*)``).
    Anything richer — OPTIONAL, UNION, BIND, expression operands — is not
    delta-evaluable and callers must rebuild instead.
    """

    __slots__ = ("patterns", "filters", "group_variables",
                 "measure_variable", "kind")

    def __init__(self, patterns: tuple[TriplePattern, ...],
                 filters: tuple[Expression, ...],
                 group_variables: tuple[Variable, ...],
                 measure_variable: Optional[Variable], kind: str) -> None:
        self.patterns = patterns
        self.filters = filters
        self.group_variables = group_variables
        self.measure_variable = measure_variable
        self.kind = kind

    def __repr__(self) -> str:
        return (f"<DeltaPlan {len(self.patterns)} patterns kind={self.kind} "
                f"groups={[v.name for v in self.group_variables]}>")


def compile_delta_plan(facet) -> Optional[DeltaPlan]:
    """The delta plan for an analytical facet, or None when unsupported.

    ``facet`` is an :class:`~repro.cube.facet.AnalyticalFacet` (typed
    loosely to keep this module free of cube imports).
    """
    op: AlgebraOp = translate_group(facet.pattern)
    filters: list[Expression] = []
    while isinstance(op, FilterOp):
        filters.append(op.expression)
        op = op.child
    if not isinstance(op, BGPOp) or not op.patterns:
        return None
    kind = KIND_BY_AGGREGATE.get(facet.aggregate.name)
    if kind is None:
        return None
    operand = facet.aggregate.operand
    if operand is None:
        measure_var: Optional[Variable] = None
        if kind != KIND_COUNT:
            return None  # SUM/MIN/MAX need an operand
    elif isinstance(operand, VarExpr):
        measure_var = operand.var
    else:
        return None  # expression operands: not delta-evaluable
    return DeltaPlan(
        patterns=op.patterns,
        filters=tuple(filters),
        group_variables=tuple(facet.grouping_variables),
        measure_variable=measure_var,
        kind=kind,
    )


class GroupAdjustment:
    """The net change of one group across an update window.

    ``count`` is the Δ of the group's row count (``COUNT(*)``); ``value``
    is the Δ of the measured aggregate — the operand sum for SUM/AVG
    facets, the bound-operand row count for COUNT facets.  For MIN/MAX
    facets ``candidates`` holds the measure ids of inserted rows; the
    stored extremum can only move toward a candidate (insert-only).
    """

    __slots__ = ("count", "value", "candidates")

    def __init__(self) -> None:
        self.count: int = 0
        self.value: int | float = 0
        self.candidates: list[int] = []

    @property
    def empty(self) -> bool:
        return self.count == 0 and self.value == 0 and not self.candidates

    def __repr__(self) -> str:
        return (f"<GroupAdjustment Δcount={self.count} Δvalue={self.value} "
                f"candidates={len(self.candidates)}>")


class DeltaEvaluator:
    """Turns a net triple delta into per-group aggregate adjustments.

    Bound to one executor (and therefore one graph + dictionary): the
    delta's id-triples must be encoded against that dictionary, which is
    what :meth:`Graph.subscribe` guarantees.
    """

    def __init__(self, executor: Executor, plan: DeltaPlan,
                 max_seed_rows: int = 100_000) -> None:
        self._executor = executor
        self._plan = plan
        self._max_seed_rows = max_seed_rows
        # id → numeric value memo (ids are stable for the graph lifetime).
        self._num_cache: dict[int, int | float] = {}

    @property
    def plan(self) -> DeltaPlan:
        return self._plan

    # -- pattern ↔ delta matching -------------------------------------------

    def _pattern_specs(self) -> Optional[list[list[tuple[bool, object]]]]:
        """Per-pattern position specs: (is_constant, id-or-variable).

        Returns None when a pattern constant was never interned — then
        neither the old nor the new graph (nor the delta) can match it, so
        the whole query is empty in both states and ΔQ = ∅.
        """
        lookup = self._executor._dict.lookup
        specs: list[list[tuple[bool, object]]] = []
        for pattern in self._plan.patterns:
            spec: list[tuple[bool, object]] = []
            for position in pattern:
                if isinstance(position, Variable):
                    spec.append((False, position))
                else:
                    tid = lookup(position)
                    if tid is None:
                        return None
                    spec.append((True, tid))
            specs.append(spec)
        return specs

    @staticmethod
    def _match(spec: list[tuple[bool, object]], triple: IdTriple
               ) -> Optional[dict[Variable, int]]:
        """The variable binding of one delta triple against one pattern."""
        binding: dict[Variable, int] = {}
        for (is_const, payload), tid in zip(spec, triple):
            if is_const:
                if payload != tid:
                    return None
            else:
                prev = binding.get(payload)  # type: ignore[arg-type]
                if prev is None:
                    binding[payload] = tid  # type: ignore[index]
                elif prev != tid:
                    return None
        return binding

    # -- the inclusion–exclusion sweep --------------------------------------

    def adjustments(self, inserted: tuple[IdTriple, ...],
                    deleted: tuple[IdTriple, ...]
                    ) -> Optional[dict[tuple, GroupAdjustment]]:
        """Per-group adjustments keyed on the full grouping-variable ids.

        Keys are id tuples over ``plan.group_variables`` in facet order
        (the finest grain); coarser views roll them up by projection.
        Returns ``None`` when the delta is not incrementally evaluable
        (non-numeric measure, or a seed blow-up past ``max_seed_rows``) —
        the caller must rebuild.  An empty dict means no group changed.
        """
        plan = self._plan
        specs = self._pattern_specs()
        result: dict[tuple, GroupAdjustment] = {}
        if specs is None:
            return result

        signed = [(t, 1) for t in inserted] + [(t, -1) for t in deleted]
        matches: list[list[tuple[dict[Variable, int], int]]] = []
        for spec in specs:
            per_pattern = []
            for triple, sign in signed:
                binding = self._match(spec, triple)
                if binding is not None:
                    per_pattern.append((binding, sign))
            matches.append(per_pattern)
        touched = [i for i, m in enumerate(matches) if m]
        if not touched:
            return result

        minmax = plan.kind == KIND_MINMAX
        for size in range(1, len(touched) + 1):
            subset_sign = 1 if size % 2 == 1 else -1
            for subset in combinations(touched, size):
                seed, weights = self._seed_for(subset, matches, subset_sign)
                if seed is None:
                    return None  # seed blow-up
                if not len(seed):
                    continue
                rest = tuple(p for j, p in enumerate(plan.patterns)
                             if j not in subset)
                op: AlgebraOp = BGPOp(rest)
                for expression in plan.filters:
                    op = FilterOp(expression, op)
                out = self._executor.run_batch(op, seed)
                ok = self._accumulate(result, out, weights,
                                      collect_candidates=minmax and size == 1)
                if not ok:
                    return None  # non-numeric measure
        return {key: adj for key, adj in result.items() if not adj.empty}

    def _seed_for(self, subset: tuple[int, ...],
                  matches: list[list[tuple[dict[Variable, int], int]]],
                  subset_sign: int
                  ) -> tuple[Optional[BindingBatch], list[int]]:
        """The seed batch for one pattern subset, plus per-row weights.

        Joins the subset patterns' delta matches on their shared
        variables; identical assignments merge, summing their weights
        (``subset_sign × Π pattern signs``).
        """
        combos: list[tuple[dict[Variable, int], int]] = [({}, subset_sign)]
        bound: set[Variable] = set()
        for i in subset:
            per_pattern = matches[i]
            if not combos or not per_pattern:
                combos = []
                break
            # Hash-join the accumulated combos with this pattern's delta
            # matches on their shared variables, so subset seeding costs
            # output size — not the cross product of the delta lists.
            shared = [v for v in per_pattern[0][0] if v in bound]
            by_key: dict[tuple, list[tuple[dict[Variable, int], int]]] = {}
            for delta_binding, sign in per_pattern:
                key = tuple(delta_binding[v] for v in shared)
                by_key.setdefault(key, []).append((delta_binding, sign))
            extended: list[tuple[dict[Variable, int], int]] = []
            for binding, weight in combos:
                bucket = by_key.get(tuple(binding[v] for v in shared))
                if not bucket:
                    continue
                for delta_binding, sign in bucket:
                    merged = dict(binding)
                    merged.update(delta_binding)
                    extended.append((merged, weight * sign))
                if len(extended) > self._max_seed_rows:
                    return None, []
            combos = extended
            for var in per_pattern[0][0]:
                bound.add(var)
        if not combos:
            return BindingBatch.unit().gather([]), []

        variables = tuple(combos[0][0])
        weight_by_row: dict[tuple, int] = {}
        for binding, weight in combos:
            key = tuple(binding[v] for v in variables)
            weight_by_row[key] = weight_by_row.get(key, 0) + weight
        rows = [(key, w) for key, w in weight_by_row.items() if w]
        columns: list[list] = [[] for _ in variables]
        weights: list[int] = []
        for key, weight in rows:
            for col, tid in zip(columns, key):
                col.append(tid)
            weights.append(weight)
        seed = BindingBatch(variables, columns, list(range(len(rows))))
        return seed, weights

    def _accumulate(self, result: dict[tuple, GroupAdjustment],
                    out: BindingBatch, weights: list[int],
                    collect_candidates: bool) -> bool:
        """Fold one pass's output rows into the adjustment table."""
        plan = self._plan
        n = len(out)
        if not n:
            return True
        keys = out.key_tuples(plan.group_variables)
        measure_col = None
        if plan.measure_variable is not None:
            k = out.index.get(plan.measure_variable)
            measure_col = out.columns[k] if k is not None else [None] * n
        prov = out.prov
        numbers = self._num_cache
        decode = self._executor.decode_id
        is_sum = plan.kind == KIND_SUM
        for row in range(n):
            weight = weights[prov[row]]
            key = keys[row]
            adjustment = result.get(key)
            if adjustment is None:
                adjustment = GroupAdjustment()
                result[key] = adjustment
            adjustment.count += weight
            if is_sum:
                tid = measure_col[row]  # type: ignore[index]
                if tid is None:
                    return False  # unbound measure: not incrementalizable
                value = numbers.get(tid)
                if value is None:
                    try:
                        value = to_number(decode(tid))
                    except ExpressionError:
                        return False  # non-numeric measure
                    numbers[tid] = value
                adjustment.value += weight * value
            elif plan.kind == KIND_COUNT:
                if plan.measure_variable is None \
                        or measure_col[row] is not None:  # type: ignore[index]
                    adjustment.value += weight
            elif collect_candidates and weight > 0:
                tid = measure_col[row]  # type: ignore[index]
                if tid is not None:
                    adjustment.candidates.append(tid)
        return True
