"""Columnar binding batches: the id-space data plane of the executor.

A :class:`BindingBatch` is a set of solution rows stored column-wise over
integer term ids (``None`` = unbound), plus a *provenance* array mapping
every row back to the row of the seed batch it extends.  Provenance is what
lets OPTIONAL detect unmatched seed rows and what lets a hash join fan a
deduplicated probe result back out to the full outer relation.

Ids come from the graph's :class:`~repro.rdf.dictionary.TermDictionary`;
terms computed at query time (BIND results, aggregate values, VALUES
constants never seen by the store) are interned by the executor into a
private overlay with *negative* ids, so id equality remains term equality
across the whole pipeline and nothing above the expression boundary ever
compares strings.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

from ..rdf.terms import Term, Variable

__all__ = ["BindingBatch", "dedup_rows"]

IdColumn = list  # list[Optional[int]]


class BindingBatch:
    """Columnar solution rows in id-space.

    ``columns[k]`` holds the ids of ``variables[k]``, one per row; ``prov``
    maps each row to the index of the seed-batch row it extends.  Batches
    are value-immutable by convention: operators build fresh column lists
    and may share them between batches, but never mutate them in place.
    """

    __slots__ = ("variables", "columns", "prov", "index")

    def __init__(self, variables: tuple[Variable, ...],
                 columns: Sequence[IdColumn], prov: list[int]) -> None:
        self.variables = variables
        self.columns = list(columns)
        self.prov = prov
        self.index: dict[Variable, int] = {
            v: k for k, v in enumerate(variables)}

    # -- constructors --------------------------------------------------------

    @classmethod
    def unit(cls) -> "BindingBatch":
        """The single empty solution (the root seed)."""
        return cls((), (), [0])

    @classmethod
    def empty(cls, variables: tuple[Variable, ...]) -> "BindingBatch":
        """Zero rows over ``variables``."""
        return cls(variables, [[] for _ in variables], [])

    # -- basic protocol ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.prov)

    def __repr__(self) -> str:
        names = ", ".join(f"?{v.name}" for v in self.variables)
        return f"<BindingBatch [{names}] with {len(self)} rows>"

    def column(self, var: Variable) -> IdColumn:
        return self.columns[self.index[var]]

    # -- row views -----------------------------------------------------------

    def row_tuples(self) -> list[tuple]:
        """All rows as id tuples (positional, aligned to ``variables``)."""
        if not self.columns:
            return [()] * len(self)
        return list(zip(*self.columns))

    def key_tuples(self, variables: Iterable[Variable]) -> list[tuple]:
        """Per-row id tuples restricted to ``variables`` (missing = None).

        This is the join/grouping key extractor: every consumer that
        groups, dedups, or hashes rows goes through here so key identity is
        id identity everywhere.
        """
        cols = []
        n = len(self)
        for v in variables:
            k = self.index.get(v)
            cols.append(self.columns[k] if k is not None else [None] * n)
        if not cols:
            return [()] * n
        return list(zip(*cols))

    def group_rows(self, variables: Iterable[Variable]
                   ) -> dict[tuple, list[int]]:
        """Row indexes grouped by the id tuples of ``variables``.

        Groups appear in first-row order and each member list is in row
        order — the contract GROUP BY evaluation and group-table
        extraction both rely on for deterministic, order-exact
        aggregation.
        """
        groups: dict[tuple, list[int]] = {}
        for i, key in enumerate(self.key_tuples(variables)):
            members = groups.get(key)
            if members is None:
                groups[key] = [i]
            else:
                members.append(i)
        return groups

    # -- derived batches -----------------------------------------------------

    def renumbered(self) -> "BindingBatch":
        """The same rows with identity provenance (a fresh seed scope)."""
        return BindingBatch(self.variables, self.columns,
                            list(range(len(self))))

    def gather(self, row_indexes: Sequence[int]) -> "BindingBatch":
        """A new batch holding ``rows[i] for i in row_indexes`` (dups ok)."""
        prov = self.prov
        return BindingBatch(
            self.variables,
            [[col[i] for i in row_indexes] for col in self.columns],
            [prov[i] for i in row_indexes])

    def decode_rows(self, decode: Callable[[int], Term],
                    cache: Optional[dict[int, Term]] = None
                    ) -> list[tuple[Optional[Term], ...]]:
        """All rows as term tuples, decoding each distinct id once.

        ``cache`` is the lazy decode cache; pass a shared dict to amortize
        decoding across several batches of one query.
        """
        if cache is None:
            cache = {}
        decoded: list[IdColumn] = []
        for col in self.columns:
            out = []
            for tid in col:
                if tid is None:
                    out.append(None)
                else:
                    term = cache.get(tid)
                    if term is None:
                        term = decode(tid)
                        cache[tid] = term
                    out.append(term)
            decoded.append(out)
        if not decoded:
            return [()] * len(self)
        return list(zip(*decoded))


def dedup_rows(keys: Sequence[tuple]) -> tuple[dict[tuple, int], list[int]]:
    """Assign each distinct key a dense index; return (key→index, per-row map).

    The executor uses this to probe/evaluate once per *distinct* bound
    prefix and hash-join the results back onto the full row set.
    """
    by_key: dict[tuple, int] = {}
    row_map: list[int] = []
    for key in keys:
        j = by_key.get(key)
        if j is None:
            j = len(by_key)
            by_key[key] = j
        row_map.append(j)
    return by_key, row_map
