"""Translation of parsed queries into executable algebra.

The algebra is a small tree of operators (BGP, Join, LeftJoin, Filter,
Union, Extend, Table, Group, Project, Distinct, OrderBy, Slice).  The
non-obvious part is aggregation: every ``AggregateExpr`` in the projection,
HAVING, or ORDER BY is pulled out into the Group operator under a fresh
internal variable, and the surrounding expression is rewritten to reference
that variable — after grouping, aggregates are just bindings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import QueryEvaluationError
from ..rdf.terms import Term, Variable
from ..rdf.triples import TriplePattern
from .ast import AggregateExpr, AndExpr, ArithExpr, BGPElement, BindElement, \
    CompareExpr, ExistsExpr, Expression, FilterElement, FuncCall, \
    GroupPattern, InExpr, NegExpr, NotExpr, OptionalElement, OrderCondition, \
    OrExpr, ProjectionItem, SelectQuery, TermExpr, UnionElement, \
    ValuesElement, VarExpr

__all__ = [
    "AlgebraOp", "UnitOp", "BGPOp", "JoinOp", "LeftJoinOp", "FilterOp",
    "UnionOp", "ExtendOp", "TableOp", "GroupOp", "ProjectOp", "DistinctOp",
    "OrderByOp", "SliceOp", "translate_query", "translate_group",
]


class AlgebraOp:
    """Base class for algebra operators."""

    __slots__ = ()


@dataclass(frozen=True)
class UnitOp(AlgebraOp):
    """The identity: a single empty solution."""


@dataclass(frozen=True)
class BGPOp(AlgebraOp):
    patterns: tuple[TriplePattern, ...]


@dataclass(frozen=True)
class JoinOp(AlgebraOp):
    left: AlgebraOp
    right: AlgebraOp


@dataclass(frozen=True)
class LeftJoinOp(AlgebraOp):
    left: AlgebraOp
    right: AlgebraOp


@dataclass(frozen=True)
class FilterOp(AlgebraOp):
    expression: Expression
    child: AlgebraOp


@dataclass(frozen=True)
class UnionOp(AlgebraOp):
    branches: tuple[AlgebraOp, ...]


@dataclass(frozen=True)
class ExtendOp(AlgebraOp):
    child: AlgebraOp
    var: Variable
    expression: Expression


@dataclass(frozen=True)
class TableOp(AlgebraOp):
    variables: tuple[Variable, ...]
    rows: tuple[tuple[Optional[Term], ...], ...]


@dataclass(frozen=True)
class GroupOp(AlgebraOp):
    child: AlgebraOp
    keys: tuple[Variable, ...]
    aggregates: tuple[tuple[Variable, AggregateExpr], ...]


@dataclass(frozen=True)
class ProjectOp(AlgebraOp):
    child: AlgebraOp
    variables: tuple[Variable, ...]


@dataclass(frozen=True)
class DistinctOp(AlgebraOp):
    child: AlgebraOp


@dataclass(frozen=True)
class OrderByOp(AlgebraOp):
    child: AlgebraOp
    conditions: tuple[OrderCondition, ...]


@dataclass(frozen=True)
class SliceOp(AlgebraOp):
    child: AlgebraOp
    offset: int
    limit: Optional[int]


def _join(left: AlgebraOp, right: AlgebraOp) -> AlgebraOp:
    if isinstance(left, UnitOp):
        return right
    if isinstance(right, UnitOp):
        return left
    if isinstance(left, BGPOp) and isinstance(right, BGPOp):
        return BGPOp(left.patterns + right.patterns)
    return JoinOp(left, right)


def translate_group(group: GroupPattern) -> AlgebraOp:
    """Translate a group graph pattern; FILTERs apply group-wide."""
    op: AlgebraOp = UnitOp()
    filters: list[Expression] = []
    for element in group.elements:
        if isinstance(element, BGPElement):
            op = _join(op, BGPOp(element.patterns))
        elif isinstance(element, FilterElement):
            filters.append(element.expression)
        elif isinstance(element, OptionalElement):
            op = LeftJoinOp(op, translate_group(element.group))
        elif isinstance(element, UnionElement):
            op = _join(op, UnionOp(tuple(
                translate_group(b) for b in element.branches)))
        elif isinstance(element, BindElement):
            op = ExtendOp(op, element.var, element.expression)
        elif isinstance(element, ValuesElement):
            op = _join(op, TableOp(element.variables, element.rows))
        else:  # pragma: no cover - parser emits only the above
            raise QueryEvaluationError(
                f"unknown pattern element {type(element).__name__}")
    for expression in filters:
        op = FilterOp(expression, op)
    return op


class _AggregateCollector:
    """Allocates internal variables for aggregate sub-expressions.

    Structurally identical aggregates (``SUM(?pop)`` used twice) share one
    accumulator/variable.
    """

    def __init__(self) -> None:
        self.by_expr: dict[AggregateExpr, Variable] = {}

    def var_for(self, agg: AggregateExpr) -> Variable:
        var = self.by_expr.get(agg)
        if var is None:
            var = Variable(f"__agg{len(self.by_expr)}")
            self.by_expr[agg] = var
        return var

    def rewrite(self, expr: Expression) -> Expression:
        """Replace every aggregate sub-expression with its internal var."""
        if isinstance(expr, AggregateExpr):
            return VarExpr(self.var_for(expr))
        if isinstance(expr, (VarExpr, TermExpr)):
            return expr
        if isinstance(expr, OrExpr):
            return OrExpr(self.rewrite(expr.left), self.rewrite(expr.right))
        if isinstance(expr, AndExpr):
            return AndExpr(self.rewrite(expr.left), self.rewrite(expr.right))
        if isinstance(expr, NotExpr):
            return NotExpr(self.rewrite(expr.operand))
        if isinstance(expr, NegExpr):
            return NegExpr(self.rewrite(expr.operand))
        if isinstance(expr, CompareExpr):
            return CompareExpr(expr.op, self.rewrite(expr.left),
                               self.rewrite(expr.right))
        if isinstance(expr, ArithExpr):
            return ArithExpr(expr.op, self.rewrite(expr.left),
                             self.rewrite(expr.right))
        if isinstance(expr, FuncCall):
            return FuncCall(expr.name,
                            tuple(self.rewrite(a) for a in expr.args))
        if isinstance(expr, InExpr):
            return InExpr(self.rewrite(expr.operand),
                          tuple(self.rewrite(o) for o in expr.options),
                          expr.negated)
        if isinstance(expr, ExistsExpr):
            return expr
        raise QueryEvaluationError(
            f"cannot rewrite expression node {type(expr).__name__}")


def translate_query(query: SelectQuery) -> AlgebraOp:
    """Translate a SELECT query into its executable algebra tree."""
    op = translate_group(query.where)
    projection = list(query.projection)
    having = list(query.having)
    order_by = list(query.order_by)

    if query.has_aggregates:
        collector = _AggregateCollector()
        rewritten: list[ProjectionItem] = []
        group_set = set(query.group_by)
        for item in projection:
            if item.expression is None:
                if item.var not in group_set:
                    raise QueryEvaluationError(
                        f"variable ?{item.var.name} is projected but neither "
                        "grouped nor aggregated")
                rewritten.append(item)
            else:
                new_expr = collector.rewrite(item.expression)
                _check_group_safety(new_expr, group_set)
                rewritten.append(ProjectionItem(item.var, new_expr))
        projection = rewritten
        having = [collector.rewrite(h) for h in having]
        order_by = [OrderCondition(collector.rewrite(c.expression),
                                   c.ascending) for c in order_by]
        aggregates = tuple((var, agg) for agg, var in
                           collector.by_expr.items())
        op = GroupOp(op, query.group_by, aggregates)
        for condition in having:
            op = FilterOp(condition, op)

    for item in projection:
        if item.expression is not None:
            op = ExtendOp(op, item.var, item.expression)

    if order_by:
        op = OrderByOp(op, tuple(order_by))

    op = ProjectOp(op, tuple(query.projected_variables()))

    if query.distinct:
        op = DistinctOp(op)
    if query.limit is not None or query.offset:
        op = SliceOp(op, query.offset, query.limit)
    return op


def _check_group_safety(expr: Expression, group_vars: set[Variable]) -> None:
    """Reject raw (non-aggregated) variables outside the GROUP BY keys.

    After aggregate rewriting, any remaining variable reference must be a
    group key or an internal aggregate variable.
    """
    for var in expr.variables():
        if var.name.startswith("__agg"):
            continue
        if var not in group_vars:
            raise QueryEvaluationError(
                f"variable ?{var.name} used in a projection expression is "
                "neither grouped nor aggregated")
