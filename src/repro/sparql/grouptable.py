"""Id-space group tables: the shared-scan core of rollup materialization.

Materializing an n-dimension view selection used to re-evaluate the
facet's full BGP + GROUP BY once per view — n× the base scan for one
selection.  A :class:`GroupTable` folds the *single* evaluation of the
facet pattern into per-group accumulators at the finest grain the batch
needs, straight from the executor's :class:`~repro.sparql.batch.BindingBatch`
and entirely in id-space: group keys are id tuples, SUM/AVG totals are
Python numbers, MIN/MAX extrema are term ids compared through the
executor's order-key cache.  Every coarser granularity is then derived by
:meth:`GroupTable.project` — classic data-cube rollup (Gray et al.) over
the lattice — without touching the base graph again.

The accumulators replicate the executor's aggregate semantics exactly so
a view encoded from a table is triple-for-triple identical to one built
by running its materialization query:

* ``rows`` is ``COUNT(*)`` (the stored ``sofos:groupCount`` of non-AVG
  facets); ``bound`` counts bound operands (``COUNT(?u)``, the stored
  count of AVG facets) — bound-but-non-numeric operands still count;
* SUM/AVG totals *poison* (aggregate unbound → no stored measure) on any
  unbound or non-numeric operand, exactly like the executor's fast path;
* MIN/MAX keep the extremum id under SPARQL order semantics with
  first-row tie-breaking, so projections merge associatively to the same
  winner the executor's member-order scan picks.

Projection is exact for SUM/COUNT/AVG over integer measures (the SOFOS
datasets) because integer addition is associative; float measures can in
principle differ in the last ulp from a direct evaluation's row-order
summation.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import ExpressionError
from ..rdf.terms import Variable
from .batch import BindingBatch
from .values import order_key, to_number

__all__ = ["GroupEntry", "GroupTable",
           "KIND_SUM", "KIND_COUNT", "KIND_MINMAX", "KIND_BY_AGGREGATE"]

#: Aggregate kinds the accumulators distinguish (shared with the delta
#: evaluator and the view patcher via :mod:`repro.sparql.delta`).
KIND_SUM = "sum"        # SUM facets and the (sum, count) half of AVG
KIND_COUNT = "count"    # COUNT facets: the measure *is* a row count
KIND_MINMAX = "minmax"  # MIN/MAX: extremum ids under order semantics

#: The single source of truth mapping rollup aggregates to their kind.
KIND_BY_AGGREGATE = {"SUM": KIND_SUM, "AVG": KIND_SUM,
                     "COUNT": KIND_COUNT, "MIN": KIND_MINMAX,
                     "MAX": KIND_MINMAX}

#: Memo sentinel for "operand decoded to a non-numeric term".
_NOT_NUMERIC = object()


class GroupEntry:
    """Accumulators of one group: COUNT(*), COUNT(u), and the measure.

    ``value`` is the running operand sum (sum kind); ``best_id`` /
    ``best_key`` / ``best_row`` track the extremum id, its order key, and
    the batch row it came from (minmax kind — ``best_row`` makes merge
    tie-breaking reproduce the executor's first-row-wins scan order).
    ``poisoned`` records that the measure aggregate evaluates to an error
    (unbound/non-numeric operand), i.e. the group stores no measure.
    """

    __slots__ = ("rows", "bound", "value", "best_id", "best_key",
                 "best_row", "poisoned")

    def __init__(self) -> None:
        self.rows: int = 0
        self.bound: int = 0
        self.value: int | float = 0
        self.best_id: Optional[int] = None
        self.best_key: Optional[tuple] = None
        self.best_row: int = -1
        self.poisoned: bool = False

    def clone(self) -> "GroupEntry":
        out = GroupEntry()
        out.rows = self.rows
        out.bound = self.bound
        out.value = self.value
        out.best_id = self.best_id
        out.best_key = self.best_key
        out.best_row = self.best_row
        out.poisoned = self.poisoned
        return out

    def __repr__(self) -> str:
        return (f"<GroupEntry rows={self.rows} bound={self.bound} "
                f"value={self.value!r} best={self.best_id} "
                f"poisoned={self.poisoned}>")


class GroupTable:
    """Finest-grain aggregation state of one facet scan, in id-space.

    ``groups`` maps group-key id tuples (aligned with ``variables``,
    ``None`` = unbound) to :class:`GroupEntry` accumulators, in first-row
    order — the same group order the executor's GROUP BY produces.  Ids
    belong to the executor the table was built by (negative ids are that
    executor's overlay).
    """

    __slots__ = ("variables", "kind", "keep_max", "groups", "executor")

    def __init__(self, executor, variables: tuple[Variable, ...], kind: str,
                 keep_max: bool = False,
                 groups: Optional[dict[tuple, GroupEntry]] = None) -> None:
        self.executor = executor
        self.variables = variables
        self.kind = kind
        self.keep_max = keep_max
        self.groups = groups if groups is not None else {}

    def __len__(self) -> int:
        return len(self.groups)

    def __repr__(self) -> str:
        names = "+".join(v.name for v in self.variables) or "()"
        return (f"<GroupTable [{names}] kind={self.kind} "
                f"{len(self.groups)} groups>")

    # -- construction --------------------------------------------------------

    @classmethod
    def from_batch(cls, executor, batch: BindingBatch,
                   keys: Sequence[Variable], operand: Optional[Variable],
                   kind: str, keep_max: bool = False) -> "GroupTable":
        """Fold a solution batch into per-group accumulators.

        ``operand`` is the measured variable (None = ``COUNT(*)``); the
        batch is consumed row by row in order, so accumulation order —
        and therefore float summation and MIN/MAX tie-breaking — matches
        a direct GROUP BY evaluation of the same pattern.
        """
        table = cls(executor, tuple(keys), kind, keep_max)
        groups = table.groups
        n = len(batch)
        operand_col = None
        if operand is not None:
            k = batch.index.get(operand)
            operand_col = batch.columns[k] if k is not None else [None] * n

        # COUNT(*) tables at a single grain (the facet rollup workhorse)
        # fold through the executor's vectorized histogram kernel: group
        # order and row counts match the scan below exactly.
        if operand_col is None and len(keys) == 1:
            k = batch.index.get(keys[0])
            fold = getattr(executor, "_group_counts", None)
            if k is not None and fold is not None:
                pre = fold(batch.columns[k], n)
                if pre is not None:
                    for key, rows in pre.items():
                        entry = GroupEntry()
                        entry.rows = rows
                        groups[(key,)] = entry
                    return table

        decode = executor.decode_id
        numbers: dict[int, object] = {}
        sort_keys: dict[int, tuple] = {}
        is_sum = kind == KIND_SUM
        is_minmax = kind == KIND_MINMAX

        for i, key in enumerate(batch.key_tuples(keys)):
            entry = groups.get(key)
            if entry is None:
                entry = GroupEntry()
                groups[key] = entry
            entry.rows += 1
            if operand_col is None:
                continue  # COUNT(*): the row count is the whole story
            tid = operand_col[i]
            if tid is None:
                if is_sum or is_minmax:
                    entry.poisoned = True
                continue
            entry.bound += 1
            if entry.poisoned:
                continue
            if is_sum:
                value = numbers.get(tid)
                if value is None:
                    try:
                        value = to_number(decode(tid))
                    except ExpressionError:
                        value = _NOT_NUMERIC
                    numbers[tid] = value
                if value is _NOT_NUMERIC:
                    entry.poisoned = True
                else:
                    entry.value += value  # type: ignore[operator]
            elif is_minmax:
                sort_key = sort_keys.get(tid)
                if sort_key is None:
                    sort_key = order_key(decode(tid))
                    sort_keys[tid] = sort_key
                if entry.best_key is None or (
                        sort_key > entry.best_key if keep_max
                        else sort_key < entry.best_key):
                    entry.best_id = tid
                    entry.best_key = sort_key
                    entry.best_row = i
        return table

    # -- rollup --------------------------------------------------------------

    def project(self, positions: Sequence[int]) -> "GroupTable":
        """Roll this table up to the key subset at ``positions``.

        Entries of finer groups sharing a projected key merge exactly:
        counts add, sums add (poison propagates), extrema compare by
        order key with the earliest originating row winning ties — the
        associative formulation of the executor's scan.  Group order is
        first-seen order of the finer groups, which is first-row order.
        """
        out = GroupTable(self.executor,
                         tuple(self.variables[p] for p in positions),
                         self.kind, self.keep_max)
        merged = out.groups
        keep_max = self.keep_max
        is_sum = self.kind == KIND_SUM
        is_minmax = self.kind == KIND_MINMAX
        for key, entry in self.groups.items():
            sub_key = tuple(key[p] for p in positions)
            target = merged.get(sub_key)
            if target is None:
                merged[sub_key] = entry.clone()
                continue
            target.rows += entry.rows
            target.bound += entry.bound
            if is_sum:
                if entry.poisoned:
                    target.poisoned = True
                elif not target.poisoned:
                    target.value += entry.value
            elif is_minmax:
                if entry.poisoned:
                    target.poisoned = True
                if entry.best_id is not None and (
                        target.best_key is None
                        or (entry.best_key > target.best_key if keep_max
                            else entry.best_key < target.best_key)
                        or (entry.best_key == target.best_key
                            and entry.best_row < target.best_row)):
                    target.best_id = entry.best_id
                    target.best_key = entry.best_key
                    target.best_row = entry.best_row
        return out

    def project_variables(self, variables: Sequence[Variable]
                          ) -> "GroupTable":
        """:meth:`project` by variable names (must be a subset of ours)."""
        index = {v: p for p, v in enumerate(self.variables)}
        return self.project([index[v] for v in variables])
