"""Aggregate accumulators: COUNT, SUM, AVG, MIN, MAX, SAMPLE, GROUP_CONCAT.

Each accumulator consumes one evaluated operand term per solution (``None``
for unbound/error) and produces a final term.  Error semantics follow
SPARQL: a type error anywhere inside SUM/AVG/MIN/MAX poisons that group's
aggregate (its value becomes unbound); COUNT simply skips unbound operands.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ExpressionError
from ..rdf.terms import Literal, Term, typed_literal
from .values import numeric_result, order_key, string_value, to_number

__all__ = ["make_accumulator", "Accumulator"]


class Accumulator:
    """Base accumulator; subclasses implement ``_add`` and ``result``."""

    def __init__(self, distinct: bool) -> None:
        self._distinct = distinct
        self._seen: set[Term] | None = set() if distinct else None
        self._failed = False

    def add(self, term: Optional[Term]) -> None:
        if self._failed:
            return
        if self._seen is not None:
            if term in self._seen:
                return
            self._seen.add(term)  # type: ignore[arg-type]
        try:
            self._add(term)
        except ExpressionError:
            self._failed = True

    def _add(self, term: Optional[Term]) -> None:
        raise NotImplementedError

    def result(self) -> Optional[Term]:
        raise NotImplementedError


class _Count(Accumulator):
    def __init__(self, distinct: bool) -> None:
        super().__init__(distinct)
        self._n = 0

    def _add(self, term: Optional[Term]) -> None:
        if term is not None:
            self._n += 1

    def result(self) -> Optional[Term]:
        return typed_literal(self._n)


class _CountStar(Accumulator):
    """COUNT(*) counts solutions, not bound values; DISTINCT is handled
    upstream (over whole solution rows) by the Group operator."""

    def __init__(self, distinct: bool) -> None:
        super().__init__(distinct=False)
        self._n = 0

    def _add(self, term: Optional[Term]) -> None:
        self._n += 1

    def result(self) -> Optional[Term]:
        return typed_literal(self._n)


class _Sum(Accumulator):
    def __init__(self, distinct: bool) -> None:
        super().__init__(distinct)
        self._total: int | float = 0
        self._operands: list[Term] = []

    def _add(self, term: Optional[Term]) -> None:
        if term is None:
            raise ExpressionError("SUM over unbound value")
        self._total += to_number(term)
        if len(self._operands) < 2:
            self._operands.append(term)

    def result(self) -> Optional[Term]:
        if self._failed:
            return None
        return numeric_result(self._total)


class _Avg(Accumulator):
    def __init__(self, distinct: bool) -> None:
        super().__init__(distinct)
        self._total: int | float = 0
        self._n = 0

    def _add(self, term: Optional[Term]) -> None:
        if term is None:
            raise ExpressionError("AVG over unbound value")
        self._total += to_number(term)
        self._n += 1

    def result(self) -> Optional[Term]:
        if self._failed:
            return None
        if self._n == 0:
            return typed_literal(0)
        return typed_literal(self._total / self._n)


class _MinMax(Accumulator):
    def __init__(self, distinct: bool, keep_max: bool) -> None:
        super().__init__(distinct)
        self._keep_max = keep_max
        self._best: Optional[Term] = None
        self._best_key: tuple | None = None

    def _add(self, term: Optional[Term]) -> None:
        if term is None:
            raise ExpressionError("MIN/MAX over unbound value")
        key = order_key(term)
        if self._best_key is None:
            self._best, self._best_key = term, key
        elif self._keep_max:
            if key > self._best_key:
                self._best, self._best_key = term, key
        elif key < self._best_key:
            self._best, self._best_key = term, key

    def result(self) -> Optional[Term]:
        return None if self._failed else self._best


class _Sample(Accumulator):
    def __init__(self, distinct: bool) -> None:
        super().__init__(distinct=False)
        self._value: Optional[Term] = None

    def _add(self, term: Optional[Term]) -> None:
        if self._value is None and term is not None:
            self._value = term

    def result(self) -> Optional[Term]:
        return self._value


class _GroupConcat(Accumulator):
    def __init__(self, distinct: bool, separator: str) -> None:
        super().__init__(distinct)
        self._separator = separator
        self._parts: list[str] = []

    def _add(self, term: Optional[Term]) -> None:
        if term is None:
            raise ExpressionError("GROUP_CONCAT over unbound value")
        self._parts.append(string_value(term))

    def result(self) -> Optional[Term]:
        if self._failed:
            return None
        return Literal(self._separator.join(self._parts))


def make_accumulator(name: str, distinct: bool, separator: str = " ",
                     count_star: bool = False) -> Accumulator:
    """Factory for the accumulator implementing aggregate ``name``."""
    if name == "COUNT":
        return _CountStar(distinct) if count_star else _Count(distinct)
    if name == "SUM":
        return _Sum(distinct)
    if name == "AVG":
        return _Avg(distinct)
    if name == "MIN":
        return _MinMax(distinct, keep_max=False)
    if name == "MAX":
        return _MinMax(distinct, keep_max=True)
    if name == "SAMPLE":
        return _Sample(distinct)
    if name == "GROUP_CONCAT":
        return _GroupConcat(distinct, separator)
    raise ExpressionError(f"unknown aggregate {name}")
