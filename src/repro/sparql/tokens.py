"""Tokenizer for the SPARQL query fragment.

Produces a flat token stream with line/column positions; the parser in
:mod:`repro.sparql.parser` consumes it by recursive descent.  Keywords are
recognized case-insensitively and normalized to upper case.
"""

from __future__ import annotations

import re
from typing import Iterator, NamedTuple

from ..errors import QuerySyntaxError

__all__ = ["Token", "tokenize", "KEYWORDS"]

#: SPARQL keywords the fragment understands (normalized upper-case).
KEYWORDS = frozenset({
    "SELECT", "DISTINCT", "REDUCED", "WHERE", "FROM", "NAMED", "PREFIX",
    "BASE", "AS", "GROUP", "BY", "HAVING", "ORDER", "ASC", "DESC", "LIMIT",
    "OFFSET", "OPTIONAL", "UNION", "FILTER", "BIND", "VALUES", "UNDEF",
    "COUNT", "SUM", "AVG", "MIN", "MAX", "SAMPLE", "GROUP_CONCAT",
    "SEPARATOR", "NOT", "IN", "EXISTS", "TRUE", "FALSE", "A", "GRAPH",
    "ASK", "CONSTRUCT", "DESCRIBE",
})


class Token(NamedTuple):
    kind: str   # one of: iri pname var bnode string langtag number keyword op eof
    value: str
    line: int
    column: int

    def is_keyword(self, *names: str) -> bool:
        return self.kind == "keyword" and self.value in names

    def is_op(self, *symbols: str) -> bool:
        return self.kind == "op" and self.value in symbols


_TOKEN_RE = re.compile(
    r"""
      (?P<ws>\s+|\#[^\n]*)
    | (?P<iri><[^<>"{}|^`\\\x00-\x20]*>)
    | (?P<var>[?$][A-Za-z_][A-Za-z0-9_]*)
    | (?P<bnode>_:[A-Za-z0-9_.\-]+)
    | (?P<string>"(?:[^"\\\n\r]|\\.)*"|'(?:[^'\\\n\r]|\\.)*')
    | (?P<langtag>@[A-Za-z]{1,8}(?:-[A-Za-z0-9]{1,8})*)
    | (?P<double>(?:\d+\.\d*|\.\d+|\d+)[eE][+-]?\d+)
    | (?P<decimal>\d+\.\d+|\.\d+)
    | (?P<integer>\d+)
    | (?P<op>\^\^|&&|\|\||!=|<=|>=|[{}()\[\].,;*/+\-!=<>])
    | (?P<pname>[A-Za-z_][A-Za-z0-9_\-.]*?:[A-Za-z0-9_][A-Za-z0-9_\-.]*|[A-Za-z_][A-Za-z0-9_\-.]*?:|:[A-Za-z0-9_][A-Za-z0-9_\-.]*)
    | (?P<word>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> Iterator[Token]:
    """Tokenize a SPARQL query string.

    Raises :class:`QuerySyntaxError` on characters outside the grammar.
    """
    pos = 0
    line = 1
    line_start = 0
    n = len(text)
    while pos < n:
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise QuerySyntaxError(
                f"unexpected character {text[pos]!r}", line, pos - line_start + 1)
        kind = m.lastgroup or ""
        value = m.group()
        column = pos - line_start + 1
        if kind == "ws":
            pass
        elif kind == "word":
            # All bare words become upper-cased keyword tokens; the parser
            # decides whether a given keyword is legal in context (this is
            # also how builtin function names like STR reach the parser).
            yield Token("keyword", value.upper(), line, column)
        elif kind in ("double", "decimal", "integer"):
            yield Token("number", value, line, column)
        else:
            yield Token(kind, value, line, column)
        newlines = value.count("\n")
        if newlines:
            line += newlines
            line_start = pos + value.rfind("\n") + 1
        pos = m.end()
    yield Token("eof", "", line, n - line_start + 1)
