"""A SPARQL SELECT engine for the analytical fragment.

Pipeline: ``parse_query`` → :class:`SelectQuery` AST → ``translate_query``
→ algebra → :class:`Executor` streams solutions → :class:`ResultTable`.
Most callers only need :class:`QueryEngine`.
"""

from .algebra import translate_group, translate_query
from .ast import AggregateExpr, Expression, GroupPattern, ProjectionItem, \
    SelectQuery
from .engine import PreparedQuery, QueryEngine
from .executor import Executor
from .parser import parse_query
from .results import ResultTable

__all__ = [
    "AggregateExpr", "Executor", "Expression", "GroupPattern",
    "PreparedQuery", "ProjectionItem", "QueryEngine", "ResultTable",
    "SelectQuery", "parse_query", "translate_group", "translate_query",
]
