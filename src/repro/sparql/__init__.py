"""A SPARQL SELECT engine for the analytical fragment.

Pipeline: ``parse_query`` → :class:`SelectQuery` AST → ``translate_query``
→ algebra → :class:`Executor` pushes columnar id-space batches
(:class:`BindingBatch`) → :class:`ResultTable`.  Most callers only need
:class:`QueryEngine`.  :class:`ReferenceExecutor` is the retained
tuple-at-a-time evaluator used as the parity/benchmark oracle.
"""

from .algebra import translate_group, translate_query
from .ast import AggregateExpr, Expression, GroupPattern, ProjectionItem, \
    SelectQuery
from .batch import BindingBatch
from .delta import DeltaEvaluator, DeltaPlan, GroupAdjustment, \
    compile_delta_plan
from .engine import PreparedQuery, QueryEngine
from .executor import Executor
from .grouptable import GroupEntry, GroupTable, KIND_BY_AGGREGATE
from .parser import parse_query
from .reference import ReferenceExecutor
from .results import ResultTable

__all__ = [
    "AggregateExpr", "BindingBatch", "DeltaEvaluator", "DeltaPlan",
    "Executor", "Expression", "GroupAdjustment", "GroupEntry",
    "GroupPattern", "GroupTable", "KIND_BY_AGGREGATE",
    "PreparedQuery", "ProjectionItem", "QueryEngine", "ReferenceExecutor",
    "ResultTable", "SelectQuery", "compile_delta_plan", "parse_query",
    "translate_group", "translate_query",
]
