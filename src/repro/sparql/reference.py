"""The tuple-at-a-time reference evaluator.

This is the seed engine's recursive-generator executor, retained verbatim
as the semantic oracle for the batched id-space pipeline in
:mod:`repro.sparql.executor`: the parity test suite runs every workload
through both and asserts bag-equal results, and the benchmark trajectory
(``BENCH_engine.json``) reports the batched pipeline's speedup against it.

It is also the EXISTS evaluation engine for the batched executor: EXISTS
wants early termination on the first solution of a nested group under one
concrete binding, which a streaming evaluator does naturally.
"""

from __future__ import annotations

from itertools import islice
from typing import Iterator, Optional

from ..errors import ExpressionError, QueryEvaluationError
from ..rdf.graph import Graph
from ..rdf.terms import IRI, Term, Variable
from ..rdf.triples import TriplePattern
from .aggregates import make_accumulator
from .algebra import AlgebraOp, BGPOp, DistinctOp, ExtendOp, FilterOp, \
    GroupOp, JoinOp, LeftJoinOp, OrderByOp, ProjectOp, SliceOp, TableOp, \
    UnionOp, UnitOp, translate_group
from .ast import GroupPattern
from .expr import EvalContext, evaluate, evaluate_ebv
from .values import order_key

__all__ = ["ReferenceExecutor"]

Binding = dict[Variable, Term]

#: Sentinel fed to COUNT(*) accumulators — any non-None term-like value works.
_ROW_MARKER = IRI("urn:sofos:row")


class ReferenceExecutor:
    """Evaluates algebra trees against one graph, one binding at a time."""

    def __init__(self, graph: Graph) -> None:
        self._graph = graph
        # Keyed on the (hashable, frozen) GroupPattern itself: the cache
        # then holds a strong reference, so a collected group's id can
        # never be reused to serve a stale compiled plan.
        self._exists_cache: dict[GroupPattern, AlgebraOp] = {}
        self._ctx = EvalContext(exists=self._exists)

    def run(self, op: AlgebraOp, seed: Binding | None = None
            ) -> Iterator[Binding]:
        """Stream the solutions of ``op``, optionally under a seed binding."""
        return self._eval(op, dict(seed) if seed else {})

    def _exists(self, group: GroupPattern, binding: Binding) -> bool:
        op = self._exists_cache.get(group)
        if op is None:
            op = translate_group(group)
            self._exists_cache[group] = op
        for _ in self._eval(op, binding):
            return True
        return False

    # -- dispatch ------------------------------------------------------------

    def _eval(self, op: AlgebraOp, seed: Binding) -> Iterator[Binding]:
        if isinstance(op, UnitOp):
            return iter([dict(seed)])
        if isinstance(op, BGPOp):
            return self._eval_bgp(op.patterns, seed)
        if isinstance(op, JoinOp):
            return self._eval_join(op, seed)
        if isinstance(op, LeftJoinOp):
            return self._eval_leftjoin(op, seed)
        if isinstance(op, FilterOp):
            return self._eval_filter(op, seed)
        if isinstance(op, UnionOp):
            return self._eval_union(op, seed)
        if isinstance(op, ExtendOp):
            return self._eval_extend(op, seed)
        if isinstance(op, TableOp):
            return self._eval_table(op, seed)
        if isinstance(op, GroupOp):
            return self._eval_groupby(op, seed)
        if isinstance(op, ProjectOp):
            return self._eval_project(op, seed)
        if isinstance(op, DistinctOp):
            return self._eval_distinct(op, seed)
        if isinstance(op, OrderByOp):
            return self._eval_orderby(op, seed)
        if isinstance(op, SliceOp):
            return islice(self._eval(op.child, seed),
                          op.offset,
                          None if op.limit is None else op.offset + op.limit)
        raise QueryEvaluationError(f"unknown operator {type(op).__name__}")

    # -- basic graph patterns -------------------------------------------------

    def _eval_bgp(self, patterns: tuple[TriplePattern, ...], seed: Binding
                  ) -> Iterator[Binding]:
        graph = self._graph
        dictionary = graph.dictionary
        if not patterns:
            yield dict(seed)
            return

        pattern_vars: set[Variable] = set()
        for p in patterns:
            pattern_vars.update(p.variables())

        # Seed variables that occur in the patterns become constants; a seed
        # term missing from the dictionary cannot match anything.
        id_seed: dict[Variable, int] = {}
        for var, term in seed.items():
            if var in pattern_vars:
                tid = dictionary.lookup(term)
                if tid is None:
                    return
                id_seed[var] = tid

        # Compile each pattern into id-space: ('c', id) or ('v', var) per
        # position.  An unseen constant term means zero matches.
        compiled: list[list[tuple[str, object]]] = []
        for p in patterns:
            spec: list[tuple[str, object]] = []
            for position in p:
                if isinstance(position, Variable):
                    if position in id_seed:
                        spec.append(("c", id_seed[position]))
                    else:
                        spec.append(("v", position))
                else:
                    tid = dictionary.lookup(position)
                    if tid is None:
                        return
                    spec.append(("c", tid))
            compiled.append(spec)

        order = self._plan_order(compiled)

        decode = dictionary.decode
        match_ids = graph.match_ids
        n = len(order)

        def step(index: int, bound: dict[Variable, int]) -> Iterator[Binding]:
            if index == n:
                result = dict(seed)
                for var, tid in bound.items():
                    result[var] = decode(tid)
                yield result
                return
            spec = compiled[order[index]]
            lookup: list[Optional[int]] = []
            var_positions: list[tuple[int, Variable]] = []
            for pos, (kind, payload) in enumerate(spec):
                if kind == "c":
                    lookup.append(payload)  # type: ignore[arg-type]
                else:
                    var = payload
                    assert isinstance(var, Variable)
                    tid = bound.get(var)
                    lookup.append(tid)
                    if tid is None:
                        var_positions.append((pos, var))
            for ids in match_ids(lookup[0], lookup[1], lookup[2]):
                extended = bound
                fresh = False
                consistent = True
                for pos, var in var_positions:
                    tid = ids[pos]
                    existing = extended.get(var)
                    if existing is None:
                        if not fresh:
                            extended = dict(extended)
                            fresh = True
                        extended[var] = tid
                    elif existing != tid:
                        consistent = False
                        break
                if consistent:
                    yield from step(index + 1, extended)

        yield from step(0, {})

    def _plan_order(self, compiled: list[list[tuple[str, object]]]
                    ) -> list[int]:
        """Greedy selectivity ordering of BGP patterns.

        The base estimate is the exact count of the pattern's constant
        skeleton; each position that will already be variable-bound when the
        pattern runs divides the estimate (bound joins are selective).
        """
        graph = self._graph
        base: list[int] = []
        for spec in compiled:
            ids = [payload if kind == "c" else None
                   for kind, payload in spec]
            base.append(graph.count_ids(*ids))  # type: ignore[arg-type]

        remaining = list(range(len(compiled)))
        bound_vars: set[Variable] = set()
        order: list[int] = []
        while remaining:
            def score(i: int) -> float:
                estimate = float(base[i])
                for kind, payload in compiled[i]:
                    if kind == "v" and payload in bound_vars:
                        estimate /= 20.0
                return estimate

            best = min(remaining, key=score)
            order.append(best)
            remaining.remove(best)
            for kind, payload in compiled[best]:
                if kind == "v":
                    assert isinstance(payload, Variable)
                    bound_vars.add(payload)
        return order

    # -- joins -----------------------------------------------------------------

    def _eval_join(self, op: JoinOp, seed: Binding) -> Iterator[Binding]:
        for left in self._eval(op.left, seed):
            yield from self._eval(op.right, left)

    def _eval_leftjoin(self, op: LeftJoinOp, seed: Binding
                       ) -> Iterator[Binding]:
        for left in self._eval(op.left, seed):
            matched = False
            for merged in self._eval(op.right, left):
                matched = True
                yield merged
            if not matched:
                yield left

    def _eval_union(self, op: UnionOp, seed: Binding) -> Iterator[Binding]:
        for branch in op.branches:
            yield from self._eval(branch, seed)

    def _eval_table(self, op: TableOp, seed: Binding) -> Iterator[Binding]:
        for row in op.rows:
            merged = dict(seed)
            compatible = True
            for var, term in zip(op.variables, row):
                if term is None:  # UNDEF leaves the variable as-is
                    continue
                existing = merged.get(var)
                if existing is None:
                    merged[var] = term
                elif existing != term:
                    compatible = False
                    break
            if compatible:
                yield merged

    # -- filters, extends ---------------------------------------------------------

    def _eval_filter(self, op: FilterOp, seed: Binding) -> Iterator[Binding]:
        for binding in self._eval(op.child, seed):
            if evaluate_ebv(op.expression, binding, self._ctx):
                yield binding

    def _eval_extend(self, op: ExtendOp, seed: Binding) -> Iterator[Binding]:
        for binding in self._eval(op.child, seed):
            if op.var in binding:
                raise QueryEvaluationError(
                    f"BIND would rebind already-bound variable ?{op.var.name}")
            try:
                value = evaluate(op.expression, binding, self._ctx)
            except ExpressionError:
                value = None
            if value is not None:
                binding = dict(binding)
                binding[op.var] = value
            yield binding

    # -- grouping -------------------------------------------------------------------

    def _eval_groupby(self, op: GroupOp, seed: Binding) -> Iterator[Binding]:
        groups: dict[tuple, list[Binding]] = {}
        for binding in self._eval(op.child, seed):
            key = tuple(binding.get(k) for k in op.keys)
            groups.setdefault(key, []).append(binding)

        if not groups and not op.keys:
            groups[()] = []  # implicit single group over empty input

        for key, members in groups.items():
            accumulators = []
            for var, agg in op.aggregates:
                accumulators.append((var, agg, make_accumulator(
                    agg.name, agg.distinct, agg.separator,
                    count_star=agg.operand is None)))
            for member in members:
                for var, agg, acc in accumulators:
                    if agg.operand is None:
                        acc.add(_ROW_MARKER)
                    else:
                        try:
                            acc.add(evaluate(agg.operand, member, self._ctx))
                        except ExpressionError:
                            acc.add(None)
            out: Binding = {}
            for var_key, term in zip(op.keys, key):
                if term is not None:
                    out[var_key] = term
            for var, _agg, acc in accumulators:
                value = acc.result()
                if value is not None:
                    out[var] = value
            yield out

    # -- solution modifiers ------------------------------------------------------------

    def _eval_project(self, op: ProjectOp, seed: Binding) -> Iterator[Binding]:
        wanted = op.variables
        for binding in self._eval(op.child, seed):
            yield {v: binding[v] for v in wanted if v in binding}

    def _eval_distinct(self, op: DistinctOp, seed: Binding
                       ) -> Iterator[Binding]:
        seen: set[frozenset] = set()
        for binding in self._eval(op.child, seed):
            key = frozenset(binding.items())
            if key not in seen:
                seen.add(key)
                yield binding

    def _eval_orderby(self, op: OrderByOp, seed: Binding) -> Iterator[Binding]:
        solutions = list(self._eval(op.child, seed))

        # Stable-sort from the least-significant condition backwards so the
        # per-condition ascending/descending flags compose correctly.
        for condition in reversed(op.conditions):
            def key(binding: Binding, _c=condition) -> tuple:
                try:
                    return order_key(evaluate(_c.expression, binding, self._ctx))
                except ExpressionError:
                    return (0,)

            solutions.sort(key=key, reverse=not condition.ascending)
        return iter(solutions)
