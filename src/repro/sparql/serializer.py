"""Serializing ASTs back to SPARQL text.

Used by the console panels (showing the demo's query templates and the
rewritten view queries) and by the round-trip property tests
(parse → serialize → parse must be identity up to whitespace).
"""

from __future__ import annotations

from ..errors import SPARQLError
from ..rdf.terms import Term, Variable
from ..rdf.triples import TriplePattern
from .ast import AggregateExpr, AndExpr, ArithExpr, BGPElement, BindElement, \
    CompareExpr, ExistsExpr, Expression, FilterElement, FuncCall, \
    GroupPattern, InExpr, NegExpr, NotExpr, OptionalElement, OrExpr, \
    SelectQuery, TermExpr, UnionElement, ValuesElement, VarExpr

__all__ = ["expression_text", "pattern_text", "query_text"]


def expression_text(expr: Expression) -> str:
    """Render an expression as SPARQL (fully parenthesized where nested)."""
    if isinstance(expr, VarExpr):
        return f"?{expr.var.name}"
    if isinstance(expr, TermExpr):
        return expr.term.n3()
    if isinstance(expr, OrExpr):
        return f"({expression_text(expr.left)} || {expression_text(expr.right)})"
    if isinstance(expr, AndExpr):
        return f"({expression_text(expr.left)} && {expression_text(expr.right)})"
    if isinstance(expr, NotExpr):
        return f"(! {expression_text(expr.operand)})"
    if isinstance(expr, NegExpr):
        return f"(- {expression_text(expr.operand)})"
    if isinstance(expr, CompareExpr):
        return (f"({expression_text(expr.left)} {expr.op} "
                f"{expression_text(expr.right)})")
    if isinstance(expr, ArithExpr):
        return (f"({expression_text(expr.left)} {expr.op} "
                f"{expression_text(expr.right)})")
    if isinstance(expr, FuncCall):
        args = ", ".join(expression_text(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, InExpr):
        options = ", ".join(expression_text(o) for o in expr.options)
        keyword = "NOT IN" if expr.negated else "IN"
        return f"({expression_text(expr.operand)} {keyword} ({options}))"
    if isinstance(expr, AggregateExpr):
        inner = "*" if expr.operand is None else expression_text(expr.operand)
        distinct = "DISTINCT " if expr.distinct else ""
        if expr.name == "GROUP_CONCAT" and expr.separator != " ":
            sep = expr.separator.replace("\\", "\\\\").replace('"', '\\"')
            return f'{expr.name}({distinct}{inner}; SEPARATOR = "{sep}")'
        return f"{expr.name}({distinct}{inner})"
    if isinstance(expr, ExistsExpr):
        keyword = "NOT EXISTS" if expr.negated else "EXISTS"
        return f"{keyword} {pattern_text(expr.group)}"
    raise SPARQLError(f"cannot serialize expression {type(expr).__name__}")


def _position_text(position: Term | Variable) -> str:
    return position.n3()


def _triple_text(tp: TriplePattern) -> str:
    return (f"{_position_text(tp.s)} {_position_text(tp.p)} "
            f"{_position_text(tp.o)} .")


def pattern_text(group: GroupPattern, indent: str = "  ") -> str:
    """Render a group graph pattern with one element per line."""
    lines: list[str] = ["{"]
    for element in group.elements:
        if isinstance(element, BGPElement):
            for tp in element.patterns:
                lines.append(indent + _triple_text(tp))
        elif isinstance(element, FilterElement):
            lines.append(indent
                         + f"FILTER {expression_text(element.expression)}")
        elif isinstance(element, OptionalElement):
            inner = pattern_text(element.group, indent + "  ")
            lines.append(indent + "OPTIONAL " + inner)
        elif isinstance(element, UnionElement):
            rendered = [pattern_text(b, indent + "  ")
                        for b in element.branches]
            lines.append(indent + " UNION ".join(rendered))
        elif isinstance(element, BindElement):
            lines.append(indent + f"BIND({expression_text(element.expression)}"
                                  f" AS ?{element.var.name})")
        elif isinstance(element, ValuesElement):
            names = " ".join(f"?{v.name}" for v in element.variables)
            rows = []
            for row in element.rows:
                cells = " ".join("UNDEF" if cell is None else cell.n3()
                                 for cell in row)
                rows.append(f"({cells})")
            lines.append(indent + f"VALUES ({names}) {{ {' '.join(rows)} }}")
        else:  # pragma: no cover - defensive
            raise SPARQLError(
                f"cannot serialize element {type(element).__name__}")
    lines.append("}")
    return "\n".join(lines)


def query_text(query: SelectQuery) -> str:
    """Render a full SELECT query as executable SPARQL text."""
    parts: list[str] = ["SELECT"]
    if query.distinct:
        parts.append("DISTINCT")
    if query.star:
        parts.append("*")
    else:
        for item in query.projection:
            if item.expression is None:
                parts.append(f"?{item.var.name}")
            else:
                parts.append(f"({expression_text(item.expression)} "
                             f"AS ?{item.var.name})")
    lines = [" ".join(parts), "WHERE " + pattern_text(query.where)]
    if query.group_by:
        lines.append("GROUP BY "
                     + " ".join(f"?{v.name}" for v in query.group_by))
    for condition in query.having:
        lines.append(f"HAVING ({expression_text(condition)})")
    if query.order_by:
        rendered = []
        for condition in query.order_by:
            body = expression_text(condition.expression)
            if condition.ascending:
                rendered.append(f"ASC({body})")
            else:
                rendered.append(f"DESC({body})")
        lines.append("ORDER BY " + " ".join(rendered))
    if query.limit is not None:
        lines.append(f"LIMIT {query.limit}")
    if query.offset:
        lines.append(f"OFFSET {query.offset}")
    return "\n".join(lines)
