"""Builtin SPARQL functions.

Each function receives already-evaluated argument terms and returns a term.
Functions with non-strict argument evaluation (``IF``, ``COALESCE``,
``BOUND``) are special-cased in the evaluator and are listed here only so
the parser recognizes their names.
"""

from __future__ import annotations

import re
from typing import Callable, Optional

from ..errors import ExpressionError
from ..rdf.terms import XSD, BlankNode, IRI, Literal, Term, typed_literal
from .values import string_value, to_number

__all__ = ["BUILTIN_NAMES", "LAZY_BUILTINS", "call_builtin"]

#: Builtins evaluated lazily by the evaluator itself.
LAZY_BUILTINS = frozenset({"BOUND", "IF", "COALESCE"})

_Impl = Callable[..., Term]
_REGISTRY: dict[str, tuple[int, int, _Impl]] = {}


def _register(name: str, min_args: int, max_args: int):
    def wrap(fn: _Impl) -> _Impl:
        _REGISTRY[name] = (min_args, max_args, fn)
        return fn
    return wrap


def call_builtin(name: str, args: list[Optional[Term]]) -> Term:
    """Dispatch a strict builtin call; raises ExpressionError on type errors."""
    entry = _REGISTRY.get(name)
    if entry is None:
        raise ExpressionError(f"unknown function {name}")
    min_args, max_args, fn = entry
    if not (min_args <= len(args) <= max_args):
        raise ExpressionError(
            f"{name} expects {min_args}..{max_args} arguments, got {len(args)}")
    return fn(*args)


def _require_literal(term: Optional[Term], who: str) -> Literal:
    if not isinstance(term, Literal):
        raise ExpressionError(f"{who} requires a literal, got {term!r}")
    return term


def _string_literal_like(template: Literal, text: str) -> Literal:
    """Build a string result carrying the language tag of the input."""
    if template.language:
        return Literal(text, language=template.language)
    return Literal(text)


@_register("STR", 1, 1)
def _str(term: Optional[Term]) -> Term:
    return Literal(string_value(term))


@_register("LANG", 1, 1)
def _lang(term: Optional[Term]) -> Term:
    lit = _require_literal(term, "LANG")
    return Literal(lit.language or "")


@_register("LANGMATCHES", 2, 2)
def _langmatches(tag: Optional[Term], pattern: Optional[Term]) -> Term:
    tag_text = string_value(tag).lower()
    pattern_text = string_value(pattern).lower()
    if pattern_text == "*":
        match = bool(tag_text)
    else:
        match = tag_text == pattern_text or tag_text.startswith(
            pattern_text + "-")
    return typed_literal(match)


@_register("DATATYPE", 1, 1)
def _datatype(term: Optional[Term]) -> Term:
    lit = _require_literal(term, "DATATYPE")
    return lit.datatype


@_register("IRI", 1, 1)
@_register("URI", 1, 1)
def _iri(term: Optional[Term]) -> Term:
    if isinstance(term, IRI):
        return term
    return IRI(string_value(term))


@_register("BNODE", 0, 1)
def _bnode(term: Optional[Term] = None) -> Term:
    if term is None:
        return BlankNode.fresh()
    return BlankNode.fresh(string_value(term) + "_")


@_register("ABS", 1, 1)
def _abs(term: Optional[Term]) -> Term:
    value = to_number(term)
    return typed_literal(abs(value)) if isinstance(value, int) \
        else typed_literal(float(abs(value)))


@_register("CEIL", 1, 1)
def _ceil(term: Optional[Term]) -> Term:
    import math
    return typed_literal(int(math.ceil(to_number(term))))


@_register("FLOOR", 1, 1)
def _floor(term: Optional[Term]) -> Term:
    import math
    return typed_literal(int(math.floor(to_number(term))))


@_register("ROUND", 1, 1)
def _round(term: Optional[Term]) -> Term:
    import math
    return typed_literal(int(math.floor(to_number(term) + 0.5)))


@_register("STRLEN", 1, 1)
def _strlen(term: Optional[Term]) -> Term:
    return typed_literal(len(string_value(term)))


@_register("UCASE", 1, 1)
def _ucase(term: Optional[Term]) -> Term:
    lit = _require_literal(term, "UCASE")
    return _string_literal_like(lit, lit.lexical.upper())


@_register("LCASE", 1, 1)
def _lcase(term: Optional[Term]) -> Term:
    lit = _require_literal(term, "LCASE")
    return _string_literal_like(lit, lit.lexical.lower())


@_register("CONCAT", 0, 16)
def _concat(*terms: Optional[Term]) -> Term:
    return Literal("".join(string_value(t) for t in terms))


@_register("SUBSTR", 2, 3)
def _substr(source: Optional[Term], start: Optional[Term],
            length: Optional[Term] = None) -> Term:
    lit = _require_literal(source, "SUBSTR")
    begin = int(to_number(start)) - 1  # SPARQL is 1-based
    if begin < 0:
        begin = 0
    if length is None:
        return _string_literal_like(lit, lit.lexical[begin:])
    count = int(to_number(length))
    return _string_literal_like(lit, lit.lexical[begin:begin + count])


@_register("CONTAINS", 2, 2)
def _contains(haystack: Optional[Term], needle: Optional[Term]) -> Term:
    return typed_literal(string_value(needle) in string_value(haystack))


@_register("STRSTARTS", 2, 2)
def _strstarts(haystack: Optional[Term], needle: Optional[Term]) -> Term:
    return typed_literal(string_value(haystack).startswith(string_value(needle)))


@_register("STRENDS", 2, 2)
def _strends(haystack: Optional[Term], needle: Optional[Term]) -> Term:
    return typed_literal(string_value(haystack).endswith(string_value(needle)))


@_register("STRBEFORE", 2, 2)
def _strbefore(haystack: Optional[Term], needle: Optional[Term]) -> Term:
    text = string_value(haystack)
    sep = string_value(needle)
    idx = text.find(sep)
    return Literal(text[:idx] if idx >= 0 else "")


@_register("STRAFTER", 2, 2)
def _strafter(haystack: Optional[Term], needle: Optional[Term]) -> Term:
    text = string_value(haystack)
    sep = string_value(needle)
    idx = text.find(sep)
    return Literal(text[idx + len(sep):] if idx >= 0 else "")


@_register("REPLACE", 3, 4)
def _replace(source: Optional[Term], pattern: Optional[Term],
             replacement: Optional[Term], flags: Optional[Term] = None) -> Term:
    lit = _require_literal(source, "REPLACE")
    re_flags = _regex_flags(flags)
    try:
        result = re.sub(string_value(pattern), string_value(replacement),
                        lit.lexical, flags=re_flags)
    except re.error as exc:
        raise ExpressionError(f"invalid REPLACE pattern: {exc}") from exc
    return _string_literal_like(lit, result)


def _regex_flags(flags: Optional[Term]) -> int:
    if flags is None:
        return 0
    out = 0
    for ch in string_value(flags):
        if ch == "i":
            out |= re.IGNORECASE
        elif ch == "s":
            out |= re.DOTALL
        elif ch == "m":
            out |= re.MULTILINE
        elif ch == "x":
            out |= re.VERBOSE
        else:
            raise ExpressionError(f"unsupported REGEX flag {ch!r}")
    return out


@_register("REGEX", 2, 3)
def _regex(text: Optional[Term], pattern: Optional[Term],
           flags: Optional[Term] = None) -> Term:
    try:
        found = re.search(string_value(pattern), string_value(text),
                          flags=_regex_flags(flags))
    except re.error as exc:
        raise ExpressionError(f"invalid REGEX pattern: {exc}") from exc
    return typed_literal(found is not None)


@_register("SAMETERM", 2, 2)
def _sameterm(left: Optional[Term], right: Optional[Term]) -> Term:
    if left is None or right is None:
        raise ExpressionError("sameTerm with unbound argument")
    return typed_literal(left == right)


@_register("ISIRI", 1, 1)
@_register("ISURI", 1, 1)
def _isiri(term: Optional[Term]) -> Term:
    if term is None:
        raise ExpressionError("isIRI of unbound value")
    return typed_literal(isinstance(term, IRI))


@_register("ISBLANK", 1, 1)
def _isblank(term: Optional[Term]) -> Term:
    if term is None:
        raise ExpressionError("isBlank of unbound value")
    return typed_literal(isinstance(term, BlankNode))


@_register("ISLITERAL", 1, 1)
def _isliteral(term: Optional[Term]) -> Term:
    if term is None:
        raise ExpressionError("isLiteral of unbound value")
    return typed_literal(isinstance(term, Literal))


@_register("ISNUMERIC", 1, 1)
def _isnumeric(term: Optional[Term]) -> Term:
    return typed_literal(isinstance(term, Literal) and term.is_numeric)


def _date_parts(term: Optional[Term]) -> list[str]:
    lit = _require_literal(term, "date accessor")
    m = re.match(r"(-?\d{4,})(?:-(\d\d))?(?:-(\d\d))?", lit.lexical)
    if m is None:
        raise ExpressionError(f"not a date value: {lit.lexical!r}")
    return [m.group(1), m.group(2) or "", m.group(3) or ""]


@_register("YEAR", 1, 1)
def _year(term: Optional[Term]) -> Term:
    return typed_literal(int(_date_parts(term)[0]))


@_register("MONTH", 1, 1)
def _month(term: Optional[Term]) -> Term:
    part = _date_parts(term)[1]
    if not part:
        raise ExpressionError("value has no month component")
    return typed_literal(int(part))


@_register("DAY", 1, 1)
def _day(term: Optional[Term]) -> Term:
    part = _date_parts(term)[2]
    if not part:
        raise ExpressionError("value has no day component")
    return typed_literal(int(part))


@_register("ENCODE_FOR_URI", 1, 1)
def _encode_for_uri(term: Optional[Term]) -> Term:
    from urllib.parse import quote
    return Literal(quote(string_value(term), safe=""))


BUILTIN_NAMES = frozenset(_REGISTRY) | LAZY_BUILTINS
