"""User-selected views: the demo's interactive selection mode.

In the GUI the user clicks lattice nodes; programmatically,
:class:`UserSelection` takes the chosen views (by label, variable tuple,
or definition) and produces the same :class:`SelectionResult` shape the
automatic selectors emit, so downstream comparison treats a human exactly
like a cost model.
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence

from ..errors import SelectionError
from ..cube.lattice import ViewLattice
from ..cube.query import AnalyticalQuery
from ..cube.view import ViewDefinition
from ..rdf.terms import Variable
from ..cost.profiler import LatticeProfile
from .greedy import evaluate_selection_cost, workload_masks
from .plans import SelectionResult

__all__ = ["UserSelection"]


class UserSelection:
    """A fixed, human-chosen set of views."""

    strategy = "user"

    def __init__(self, choices: Iterable[ViewDefinition | str |
                                         tuple[str, ...]],
                 label: str = "user") -> None:
        self._choices = list(choices)
        self._label = label

    def _resolve(self, lattice: ViewLattice) -> list[ViewDefinition]:
        resolved: list[ViewDefinition] = []
        by_label = {view.label: view for view in lattice}
        for choice in self._choices:
            if isinstance(choice, ViewDefinition):
                if choice.facet != lattice.facet:
                    raise SelectionError(
                        f"view {choice.label!r} belongs to another facet")
                resolved.append(lattice[choice.mask])
            elif isinstance(choice, str):
                view = by_label.get(choice)
                if view is None:
                    raise SelectionError(
                        f"no view labelled {choice!r}; available: "
                        + ", ".join(sorted(by_label)))
                resolved.append(view)
            else:
                variables = tuple(Variable(name) for name in choice)
                resolved.append(lattice.view_for(variables))
        seen: set[int] = set()
        unique: list[ViewDefinition] = []
        for view in resolved:
            if view.mask not in seen:
                seen.add(view.mask)
                unique.append(view)
        return unique

    def select(self, lattice: ViewLattice, profile: LatticeProfile,
               k: int | None = None,
               workload: Sequence[AnalyticalQuery] | None = None
               ) -> SelectionResult:
        """Resolve the user's picks (``k`` truncates when given).

        The estimated cost is computed with the aggregated-values model so
        that user selections can be compared on the same scale the demo's
        performance panel uses.
        """
        start = time.perf_counter()
        views = self._resolve(lattice)
        if k is not None:
            views = views[:k]
        rows = {view.mask: float(profile.rows(view)) for view in lattice}
        base_cost = float(profile.base.rows)
        query_masks = workload_masks(lattice, workload)
        total = evaluate_selection_cost(
            [v.mask for v in views], query_masks, rows, base_cost)
        return SelectionResult(
            strategy=self.strategy,
            cost_model=self._label,
            views=views,
            estimated_workload_cost=total,
            select_seconds=time.perf_counter() - start,
        )
