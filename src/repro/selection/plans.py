"""Selection results: what was chosen, why, and at what estimated cost."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..cube.view import ViewDefinition

__all__ = ["SelectionStep", "SelectionResult"]


@dataclass(frozen=True)
class SelectionStep:
    """One greedy round: the chosen view and its marginal benefit."""

    view: ViewDefinition
    benefit: float
    estimated_cost: float


@dataclass
class SelectionResult:
    """The outcome of a view-selection run."""

    strategy: str
    cost_model: str
    views: list[ViewDefinition]
    steps: list[SelectionStep] = field(default_factory=list)
    estimated_workload_cost: float = 0.0
    select_seconds: float = 0.0

    @property
    def masks(self) -> frozenset[int]:
        return frozenset(v.mask for v in self.views)

    @property
    def labels(self) -> list[str]:
        return [v.label for v in self.views]

    def describe(self) -> str:
        picked = ", ".join(self.labels) or "(none)"
        return (f"{self.strategy}[{self.cost_model}] -> {picked} "
                f"(est. workload cost {self.estimated_workload_cost:.1f})")

    def __repr__(self) -> str:
        return f"<SelectionResult {self.describe()}>"
