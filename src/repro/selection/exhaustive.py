"""Exhaustive (optimal) view selection for small lattices.

The demo's "hands-on challenge" asks participants to find the *best*
selection for a budget; this selector computes that ground truth by
enumerating every k-subset of the lattice and scoring it with the same
workload-cost objective the greedy selector optimizes.  Guarded by a
combination limit — the point of the challenge is that this does not
scale.
"""

from __future__ import annotations

import time
from itertools import combinations
from math import comb
from typing import Sequence

from ..errors import SelectionError
from ..cube.lattice import ViewLattice
from ..cube.query import AnalyticalQuery
from ..cost.base import CostModel
from ..cost.profiler import LatticeProfile
from .greedy import evaluate_selection_cost, workload_masks
from .plans import SelectionResult

__all__ = ["ExhaustiveSelector"]


class ExhaustiveSelector:
    """Optimal k-subset selection by enumeration."""

    strategy = "exhaustive"

    def __init__(self, cost_model: CostModel,
                 max_combinations: int = 500_000) -> None:
        self._model = cost_model
        self._max_combinations = max_combinations

    def select(self, lattice: ViewLattice, profile: LatticeProfile, k: int,
               workload: Sequence[AnalyticalQuery] | None = None
               ) -> SelectionResult:
        if k < 0:
            raise SelectionError(f"k must be non-negative, got {k}")
        n = len(lattice)
        k = min(k, n)
        total_combinations = comb(n, k)
        if total_combinations > self._max_combinations:
            raise SelectionError(
                f"C({n},{k}) = {total_combinations} exceeds the enumeration "
                f"limit {self._max_combinations}; use the greedy selector")
        start = time.perf_counter()
        model = self._model
        model.prepare(profile)
        costs = {view.mask: model.cost(view, profile) for view in lattice}
        base_cost = model.base_cost(profile)
        query_masks = workload_masks(lattice, workload)

        views = list(lattice)
        best_cost = float("inf")
        best_subset: tuple = ()
        for subset in combinations(views, k):
            masks = [v.mask for v in subset]
            total = evaluate_selection_cost(masks, query_masks, costs,
                                            base_cost)
            if total < best_cost:
                best_cost = total
                best_subset = subset

        return SelectionResult(
            strategy=self.strategy,
            cost_model=model.describe(),
            views=list(best_subset),
            estimated_workload_cost=best_cost,
            select_seconds=time.perf_counter() - start,
        )
