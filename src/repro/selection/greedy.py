"""Greedy view selection (Harinarayan–Rajaraman–Ullman adapted to SOFOS).

Following the paper (§3): "Given a set of selected views, the greedy
approach exploits the estimated time from the cost function and compares
the expected running time of a set of queries with and without including
the candidate view."

The *query set* is either an explicit workload of analytical queries or —
when none is given — the lattice itself (every view doubles as the query
asking for its granularity), which is the classic HRU setting.  The cost
to answer a query is the model's estimate of the cheapest selected view
able to answer it, falling back to the model's base-graph cost.  Ties are
broken by a seeded RNG, so the constant (random) cost model degenerates
into a uniformly random k-subset exactly as the paper describes.
"""

from __future__ import annotations

import random
import time
from typing import Sequence

from ..errors import SelectionError
from ..cube.lattice import ViewLattice
from ..cube.query import AnalyticalQuery
from ..cube.view import ViewDefinition
from ..cost.base import CostModel
from ..cost.profiler import LatticeProfile
from .plans import SelectionResult, SelectionStep

__all__ = ["GreedySelector", "workload_masks", "evaluate_selection_cost"]


def workload_masks(lattice: ViewLattice,
                   workload: Sequence[AnalyticalQuery] | None
                   ) -> list[tuple[int, float]]:
    """(required mask, weight) pairs for the query set driving selection."""
    if workload:
        masks: dict[int, float] = {}
        for query in workload:
            masks[query.required_mask] = masks.get(query.required_mask, 0.0) + 1.0
        return sorted(masks.items())
    return [(view.mask, 1.0) for view in lattice]


def evaluate_selection_cost(selected_masks: Sequence[int],
                            query_masks: Sequence[tuple[int, float]],
                            costs: dict[int, float],
                            base_cost: float) -> float:
    """Total estimated cost of a query set under a set of selected views."""
    total = 0.0
    for required, weight in query_masks:
        best = base_cost
        for mask in selected_masks:
            if (required & mask) == required:
                candidate = costs[mask]
                if candidate < best:
                    best = candidate
        total += weight * best
    return total


class GreedySelector:
    """Benefit-greedy selection of k views under a cost model."""

    strategy = "greedy"

    def __init__(self, cost_model: CostModel, seed: int = 0,
                 per_unit_space: bool = False) -> None:
        self._model = cost_model
        self._seed = seed
        self._per_unit_space = per_unit_space

    def select(self, lattice: ViewLattice, profile: LatticeProfile, k: int,
               workload: Sequence[AnalyticalQuery] | None = None
               ) -> SelectionResult:
        """Pick up to ``k`` views maximizing cumulative benefit."""
        if k < 0:
            raise SelectionError(f"k must be non-negative, got {k}")
        start = time.perf_counter()
        model = self._model
        model.prepare(profile)
        rng = random.Random(self._seed)

        costs = {view.mask: model.cost(view, profile) for view in lattice}
        base_cost = model.base_cost(profile)
        query_masks = workload_masks(lattice, workload)

        # current cheapest answer-cost per query mask
        current: dict[int, float] = {mask: base_cost for mask, _ in query_masks}

        remaining = list(lattice)
        selected: list[ViewDefinition] = []
        steps: list[SelectionStep] = []
        for _round in range(min(k, len(remaining))):
            rng.shuffle(remaining)  # seeded tie-breaking (random model!)
            best_view: ViewDefinition | None = None
            best_benefit = -1.0
            for view in remaining:
                view_cost = costs[view.mask]
                benefit = 0.0
                for mask, weight in query_masks:
                    if view.covers_mask(mask) and view_cost < current[mask]:
                        benefit += weight * (current[mask] - view_cost)
                if self._per_unit_space:
                    size = max(profile.triples(view), 1)
                    benefit /= size
                if benefit > best_benefit:
                    best_benefit = benefit
                    best_view = view
            if best_view is None:
                break
            selected.append(best_view)
            remaining.remove(best_view)
            steps.append(SelectionStep(best_view, best_benefit,
                                       costs[best_view.mask]))
            view_cost = costs[best_view.mask]
            for mask, _weight in query_masks:
                if best_view.covers_mask(mask) and view_cost < current[mask]:
                    current[mask] = view_cost

        total = evaluate_selection_cost(
            [v.mask for v in selected], query_masks, costs, base_cost)
        return SelectionResult(
            strategy=self.strategy
            + ("/unit-space" if self._per_unit_space else ""),
            cost_model=model.describe(),
            views=selected,
            steps=steps,
            estimated_workload_cost=total,
            select_seconds=time.perf_counter() - start,
        )
