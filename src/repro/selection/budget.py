"""Space-budget selection: "select up to k views up to a certain memory
budget" (paper §3).

The greedy loop is the same benefit-driven one, but a candidate is only
admissible while its exact materialized size (triples, from the profiler)
fits in the remaining budget, and benefits are normalized per unit of
space — the classic HRU benefit-per-unit-space variant.
"""

from __future__ import annotations

import random
import time
from typing import Sequence

from ..errors import SelectionError
from ..cube.lattice import ViewLattice
from ..cube.query import AnalyticalQuery
from ..cube.view import ViewDefinition
from ..cost.base import CostModel
from ..cost.profiler import LatticeProfile
from .greedy import evaluate_selection_cost, workload_masks
from .plans import SelectionResult, SelectionStep

__all__ = ["SpaceBudgetSelector"]


class SpaceBudgetSelector:
    """Greedy selection constrained by a triple-count budget."""

    strategy = "space-budget"

    def __init__(self, cost_model: CostModel, triple_budget: int,
                 max_views: int | None = None, seed: int = 0) -> None:
        if triple_budget < 0:
            raise SelectionError("triple budget must be non-negative")
        self._model = cost_model
        self._budget = triple_budget
        self._max_views = max_views
        self._seed = seed

    def select(self, lattice: ViewLattice, profile: LatticeProfile,
               k: int | None = None,
               workload: Sequence[AnalyticalQuery] | None = None
               ) -> SelectionResult:
        """``k`` optionally caps the number of views on top of the budget."""
        start = time.perf_counter()
        model = self._model
        model.prepare(profile)
        rng = random.Random(self._seed)

        costs = {view.mask: model.cost(view, profile) for view in lattice}
        sizes = {view.mask: profile.triples(view) for view in lattice}
        base_cost = model.base_cost(profile)
        query_masks = workload_masks(lattice, workload)
        current = {mask: base_cost for mask, _ in query_masks}

        cap = self._max_views if self._max_views is not None else len(lattice)
        if k is not None:
            cap = min(cap, k)

        remaining = list(lattice)
        selected: list[ViewDefinition] = []
        steps: list[SelectionStep] = []
        budget_left = self._budget
        while len(selected) < cap:
            rng.shuffle(remaining)
            best_view: ViewDefinition | None = None
            best_score = 0.0
            best_benefit = 0.0
            for view in remaining:
                size = sizes[view.mask]
                if size > budget_left:
                    continue
                view_cost = costs[view.mask]
                benefit = 0.0
                for mask, weight in query_masks:
                    if view.covers_mask(mask) and view_cost < current[mask]:
                        benefit += weight * (current[mask] - view_cost)
                score = benefit / max(size, 1)
                if score > best_score:
                    best_score = score
                    best_benefit = benefit
                    best_view = view
            if best_view is None:
                break
            selected.append(best_view)
            remaining.remove(best_view)
            budget_left -= sizes[best_view.mask]
            steps.append(SelectionStep(best_view, best_benefit,
                                       costs[best_view.mask]))
            view_cost = costs[best_view.mask]
            for mask, _weight in query_masks:
                if best_view.covers_mask(mask) and view_cost < current[mask]:
                    current[mask] = view_cost

        total = evaluate_selection_cost(
            [v.mask for v in selected], query_masks, costs, base_cost)
        return SelectionResult(
            strategy=self.strategy,
            cost_model=model.describe(),
            views=selected,
            steps=steps,
            estimated_workload_cost=total,
            select_seconds=time.perf_counter() - start,
        )
