"""Simulated-annealing view selection.

Greedy selection (HRU) is the paper's choice, but the view-selection
literature also explores randomized search (Kalnis et al., "View
selection using randomized search", DKE 2002).  This selector anneals over
k-subsets of the lattice with the same workload-cost objective the greedy
and exhaustive selectors optimize, making it a drop-in third strategy for
the ablation benches: it can escape greedy's local optima at the price of
more cost-model evaluations.

Deterministic under its seed; neighbor moves swap one selected view for
one unselected view.
"""

from __future__ import annotations

import math
import random
import time
from typing import Sequence

from ..errors import SelectionError
from ..cube.lattice import ViewLattice
from ..cube.query import AnalyticalQuery
from ..cost.base import CostModel
from ..cost.profiler import LatticeProfile
from .greedy import evaluate_selection_cost, workload_masks
from .plans import SelectionResult

__all__ = ["AnnealingSelector"]


class AnnealingSelector:
    """Randomized view selection by simulated annealing."""

    strategy = "annealing"

    def __init__(self, cost_model: CostModel, seed: int = 0,
                 iterations: int = 2000, initial_temperature: float = 1.0,
                 cooling: float = 0.995) -> None:
        if iterations < 1:
            raise SelectionError("iterations must be positive")
        if not 0.0 < cooling < 1.0:
            raise SelectionError("cooling must be in (0, 1)")
        self._model = cost_model
        self._seed = seed
        self._iterations = iterations
        self._initial_temperature = initial_temperature
        self._cooling = cooling

    def select(self, lattice: ViewLattice, profile: LatticeProfile, k: int,
               workload: Sequence[AnalyticalQuery] | None = None
               ) -> SelectionResult:
        if k < 0:
            raise SelectionError(f"k must be non-negative, got {k}")
        start = time.perf_counter()
        model = self._model
        model.prepare(profile)
        rng = random.Random(self._seed)

        views = list(lattice)
        k = min(k, len(views))
        costs = {view.mask: model.cost(view, profile) for view in views}
        base_cost = model.base_cost(profile)
        query_masks = workload_masks(lattice, workload)

        def objective(subset: list) -> float:
            return evaluate_selection_cost(
                [v.mask for v in subset], query_masks, costs, base_cost)

        current = rng.sample(views, k)
        current_cost = objective(current)
        best = list(current)
        best_cost = current_cost

        # Temperature is scaled to the objective so acceptance behaves the
        # same across datasets with very different absolute costs.
        temperature = self._initial_temperature * max(current_cost, 1.0)
        for _step in range(self._iterations):
            if k == 0 or k == len(views):
                break
            outside = [v for v in views if v not in current]
            swap_out = rng.randrange(k)
            swap_in = rng.choice(outside)
            candidate = list(current)
            candidate[swap_out] = swap_in
            candidate_cost = objective(candidate)
            delta = candidate_cost - current_cost
            if delta <= 0 or (temperature > 1e-12
                              and rng.random() < math.exp(-delta / temperature)):
                current = candidate
                current_cost = candidate_cost
                if current_cost < best_cost:
                    best = list(current)
                    best_cost = current_cost
            temperature *= self._cooling

        best.sort(key=lambda v: v.mask)
        return SelectionResult(
            strategy=self.strategy,
            cost_model=model.describe(),
            views=best,
            estimated_workload_cost=best_cost,
            select_seconds=time.perf_counter() - start,
        )
