"""View-selection strategies: greedy (HRU), exhaustive, budget, user."""

from .annealing import AnnealingSelector
from .budget import SpaceBudgetSelector
from .exhaustive import ExhaustiveSelector
from .greedy import GreedySelector, evaluate_selection_cost, workload_masks
from .plans import SelectionResult, SelectionStep
from .user import UserSelection

__all__ = [
    "AnnealingSelector", "ExhaustiveSelector", "GreedySelector", "SelectionResult",
    "SelectionStep", "SpaceBudgetSelector", "UserSelection",
    "evaluate_selection_cost", "workload_masks",
]
