"""Context-var span tracer: nested, tagged wall-clock spans.

The structural half of the observability layer.  A span covers one unit
of work (an executor run, a maintenance window, a persistence save) and
carries free-form tags — rows in/out, delta sizes, rollback reasons.
Spans nest through a :mod:`contextvars` variable, so concurrent or
re-entrant work composes correctly without any explicit threading of a
trace object.

Disabled (the default), ``span()`` returns one shared no-op object after
a single attribute check, and ``annotate()`` returns immediately — hot
paths pay one plain-attribute read.  Enabled, spans are context
managers whose ``__exit__`` *always* closes the span and records any
in-flight exception — including :class:`BaseException` subclasses such
as the fault-injection framework's ``SimulatedCrash`` — before
re-raising, so crashed windows still leave a complete, error-annotated
trace.

Finished root spans accumulate in a bounded ring buffer on the tracer
(``finished``); the hub snapshots them alongside the metrics registry.

Stdlib-only by design: imported from the bottom layers of the package.
"""

from __future__ import annotations

import time
from collections import deque
from contextvars import ContextVar
from typing import Optional

__all__ = ["Span", "SpanTracer", "tracer", "span", "annotate", "current"]


class Span:
    """One timed, tagged unit of work; context manager when live."""

    __slots__ = ("name", "tags", "children", "start", "end", "status",
                 "error", "_tracer", "_token", "_parent")

    def __init__(self, tracer: "SpanTracer", name: str, tags: dict) -> None:
        self.name = name
        self.tags = tags
        self.children: list[Span] = []
        self.start = 0.0
        self.end = 0.0
        self.status = "ok"
        self.error: Optional[str] = None
        self._tracer = tracer
        self._token = None
        self._parent: Optional[Span] = None

    @property
    def seconds(self) -> float:
        end = self.end if self.end else time.perf_counter()
        return end - self.start

    def set_tag(self, key: str, value) -> "Span":
        self.tags[key] = value
        return self

    def set_tags(self, **tags) -> "Span":
        self.tags.update(tags)
        return self

    def __enter__(self) -> "Span":
        tracer = self._tracer
        parent = tracer._current.get()
        self._parent = parent
        if parent is not None:
            parent.children.append(self)
        self._token = tracer._current.set(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        # BaseException included: a SimulatedCrash unwinding through a
        # with-block still reaches here, so the span closes and records
        # the crash before the exception continues to propagate.
        self.end = time.perf_counter()
        if exc is not None:
            self.status = "error"
            self.error = f"{type(exc).__name__}: {exc}"
        tracer = self._tracer
        if self._token is not None:
            tracer._current.reset(self._token)
            self._token = None
        if self._parent is None:
            tracer.finished.append(self)
        return False

    def find(self, name: str) -> Optional["Span"]:
        """Depth-first search for a descendant (or self) by name."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seconds": round(self.end - self.start, 9) if self.end else None,
            "status": self.status,
            "error": self.error,
            "tags": dict(self.tags),
            "children": [c.to_dict() for c in self.children],
        }

    def render(self, indent: int = 0) -> str:
        ms = (self.end - self.start) * 1e3 if self.end else 0.0
        tags = " ".join(f"{k}={v}" for k, v in sorted(self.tags.items()))
        flag = "" if self.status == "ok" else f" !{self.error}"
        line = f"{'  ' * indent}{self.name}  {ms:.3f} ms" \
               + (f"  [{tags}]" if tags else "") + flag
        return "\n".join([line] + [c.render(indent + 1)
                                   for c in self.children])

    def __repr__(self) -> str:
        return f"<Span {self.name} status={self.status}>"


class _NoopSpan:
    """Shared do-nothing stand-in returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_tag(self, key: str, value) -> "_NoopSpan":
        return self

    def set_tags(self, **tags) -> "_NoopSpan":
        return self


_NOOP_SPAN = _NoopSpan()


class SpanTracer:
    """Creates and collects spans; off by default.

    ``enabled`` is a plain attribute (mutate only via
    :meth:`enable`/:meth:`disable`) so the disabled check on hot paths
    is one attribute read.
    """

    def __init__(self, enabled: bool = False, keep: int = 256) -> None:
        self.enabled = enabled
        self.finished: deque[Span] = deque(maxlen=keep)
        self._current: ContextVar[Optional[Span]] = ContextVar(
            "repro_obs_current_span", default=None)

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self.finished.clear()

    def span(self, name: str, **tags):
        """A context-manager span, or the shared no-op when disabled."""
        if not self.enabled:
            return _NOOP_SPAN
        return Span(self, name, tags)

    def current(self) -> Optional[Span]:
        if not self.enabled:
            return None
        return self._current.get()

    def annotate(self, **tags) -> None:
        """Merge tags into the innermost live span, if any."""
        if not self.enabled:
            return
        span = self._current.get()
        if span is not None:
            span.tags.update(tags)

    def recent(self, limit: int = 16) -> list[Span]:
        """The most recent finished root spans, newest first."""
        spans = list(self.finished)
        spans.reverse()
        return spans[:limit]


#: The process-global tracer, shared with the metrics registry's hub.
_TRACER = SpanTracer()


def tracer() -> SpanTracer:
    return _TRACER


def span(name: str, **tags):
    """``tracer().span(...)`` on the process-global tracer."""
    return _TRACER.span(name, **tags)


def annotate(**tags) -> None:
    _TRACER.annotate(**tags)


def current() -> Optional[Span]:
    return _TRACER.current()
