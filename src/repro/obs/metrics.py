"""Process-global metrics registry: counters, gauges, histograms.

The registry is the quantitative half of the observability layer (the
span tracer in :mod:`repro.obs.tracing` is the structural half).
Subsystems create named instruments once at import time and feed them
from their hot seams — BGP plan-cache hits, changelog window sizes,
patch-vs-rebuild decisions, per-query latency.

Collection is **off by default** and the disabled path is engineered to
be near-free, following the failpoints idiom: every instrument mirrors
the registry's enabled flag into a plain ``_on`` attribute, so a
disabled ``inc()``/``observe()`` is one attribute read and a branch.
Hot loops can go one step cheaper and guard on ``registry().enabled``
(a plain bool attribute, mutated only through ``enable()``/
``disable()``) before even making the call.

Histograms use fixed upper-bound buckets (Prometheus-style cumulative
``le`` semantics) and estimate percentiles by linear interpolation
within the bucket that crosses the requested rank — exact min/max/sum/
count are tracked alongside, so estimates are clamped to the observed
range.

Everything here is stdlib-only on purpose: the sparql/rdf/resilience
layers import this module, so it must sit at the bottom of the import
graph.
"""

from __future__ import annotations

import json
import math
import re
from bisect import bisect_left
from typing import Iterable, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "registry",
]

_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Upper bounds (seconds) for latency histograms — sub-100µs through 10s.
DEFAULT_LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Upper bounds for size/count histograms (delta sizes, fan-out, rows).
DEFAULT_SIZE_BUCKETS = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 100000,
)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r} (want "
                         "[a-zA-Z_][a-zA-Z0-9_]*)")
    return name


def _format_number(value) -> str:
    """Prometheus-friendly number rendering (ints without trailing .0)."""
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return str(value)


def _label_key(values: Sequence[str]) -> tuple:
    return tuple(str(v) for v in values)


class _Instrument:
    """Shared plumbing: a name, label schema, and per-label series."""

    __slots__ = ("name", "help", "label_names", "_series", "_on")

    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 label_names: Sequence[str]) -> None:
        self.name = _check_name(name)
        self.help = help_text
        self.label_names = tuple(label_names)
        for label in self.label_names:
            _check_name(label)
        self._series: dict = {}
        self._on = False

    def _check_labels(self, labels: Sequence[str]) -> tuple:
        key = _label_key(labels)
        if len(key) != len(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes {len(self.label_names)} "
                f"label value(s) {self.label_names!r}, got {len(key)}")
        return key

    def clear(self) -> None:
        self._series.clear()

    def labeled_series(self) -> list:
        """``(label_values, state)`` pairs in deterministic order."""
        return sorted(self._series.items())


class Counter(_Instrument):
    """A monotonically increasing count (events, hits, decisions)."""

    __slots__ = ()
    kind = "counter"

    def inc(self, amount: int = 1, labels: Sequence[str] = ()) -> None:
        if not self._on:
            return
        key = self._check_labels(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, labels: Sequence[str] = ()):
        return self._series.get(_label_key(labels), 0)

    def total(self):
        """Sum across every label combination."""
        return sum(self._series.values())


class Gauge(_Instrument):
    """A point-in-time value (sizes, depths, last-seen quantities)."""

    __slots__ = ()
    kind = "gauge"

    def set(self, value, labels: Sequence[str] = ()) -> None:
        if not self._on:
            return
        self._series[self._check_labels(labels)] = value

    def add(self, amount, labels: Sequence[str] = ()) -> None:
        if not self._on:
            return
        key = self._check_labels(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, labels: Sequence[str] = ()):
        return self._series.get(_label_key(labels), 0)


class _HistogramSeries:
    __slots__ = ("counts", "sum", "count", "min", "max")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * n_buckets
        self.sum = 0.0
        self.count = 0
        self.min = math.inf
        self.max = -math.inf


class Histogram(_Instrument):
    """Fixed-bucket distribution with interpolated percentile estimates."""

    __slots__ = ("buckets",)
    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 label_names: Sequence[str],
                 buckets: Optional[Sequence[float]] = None) -> None:
        super().__init__(name, help_text, label_names)
        bounds = tuple(sorted(DEFAULT_LATENCY_BUCKETS if buckets is None
                              else buckets))
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        self.buckets = bounds

    def observe(self, value, labels: Sequence[str] = ()) -> None:
        if not self._on:
            return
        key = self._check_labels(labels)
        series = self._series.get(key)
        if series is None:
            # one extra slot for the implicit +Inf bucket
            self._series[key] = series = _HistogramSeries(
                len(self.buckets) + 1)
        series.counts[bisect_left(self.buckets, value)] += 1
        series.sum += value
        series.count += 1
        if value < series.min:
            series.min = value
        if value > series.max:
            series.max = value

    def count(self, labels: Sequence[str] = ()) -> int:
        series = self._series.get(_label_key(labels))
        return series.count if series is not None else 0

    def total_count(self) -> int:
        return sum(s.count for s in self._series.values())

    def percentile(self, fraction: float,
                   labels: Sequence[str] = ()) -> float:
        """Estimate the ``fraction`` quantile (0..1) for one series.

        Walks the cumulative bucket counts to the bucket containing the
        target rank, then interpolates linearly between that bucket's
        bounds; the estimate is clamped to the exact observed min/max.
        Returns ``nan`` when the series is empty.
        """
        series = self._series.get(_label_key(labels))
        if series is None or series.count == 0:
            return math.nan
        rank = fraction * series.count
        cumulative = 0
        for i, bucket_count in enumerate(series.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                lower = self.buckets[i - 1] if i > 0 else min(
                    series.min, self.buckets[0])
                upper = self.buckets[i] if i < len(self.buckets) \
                    else series.max
                if upper < lower:
                    upper = lower
                within = (rank - cumulative) / bucket_count
                estimate = lower + (upper - lower) * within
                return min(max(estimate, series.min), series.max)
            cumulative += bucket_count
        return series.max

    def merged_percentile(self, fraction: float) -> float:
        """Percentile estimate across all label combinations merged."""
        total = self.total_count()
        if total == 0:
            return math.nan
        merged = [0] * (len(self.buckets) + 1)
        lo, hi = math.inf, -math.inf
        for series in self._series.values():
            for i, c in enumerate(series.counts):
                merged[i] += c
            lo = min(lo, series.min)
            hi = max(hi, series.max)
        rank = fraction * total
        cumulative = 0
        for i, bucket_count in enumerate(merged):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                lower = self.buckets[i - 1] if i > 0 else min(
                    lo, self.buckets[0])
                upper = self.buckets[i] if i < len(self.buckets) else hi
                if upper < lower:
                    upper = lower
                within = (rank - cumulative) / bucket_count
                return min(max(lower + (upper - lower) * within, lo), hi)
            cumulative += bucket_count
        return hi


class MetricsRegistry:
    """Get-or-create instrument registry with a shared enabled switch.

    ``enabled`` is a *plain attribute* so hot paths can read it without
    a property call; treat it as read-only and flip it only through
    :meth:`enable`/:meth:`disable` (which also sync every instrument's
    fast-path flag).
    """

    def __init__(self, enabled: bool = False) -> None:
        self._instruments: dict[str, _Instrument] = {}
        self.enabled = enabled

    # -- instrument creation -------------------------------------------------

    def _get_or_create(self, cls, name: str, help_text: str,
                       label_names: Sequence[str], **kwargs) -> _Instrument:
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {cls.kind}")
            if existing.label_names != tuple(label_names):
                raise ValueError(
                    f"metric {name!r} already registered with labels "
                    f"{existing.label_names!r}")
            return existing
        instrument = cls(name, help_text, label_names, **kwargs)
        instrument._on = self.enabled
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help_text: str = "",
                labels: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help_text, labels)

    def gauge(self, name: str, help_text: str = "",
              labels: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labels)

    def histogram(self, name: str, help_text: str = "",
                  labels: Sequence[str] = (),
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        return self._get_or_create(Histogram, name, help_text, labels,
                                   buckets=buckets)

    def get(self, name: str) -> Optional[_Instrument]:
        return self._instruments.get(name)

    def __iter__(self) -> Iterable[_Instrument]:
        return iter(sorted(self._instruments.values(),
                           key=lambda i: i.name))

    # -- switches ------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True
        for instrument in self._instruments.values():
            instrument._on = True

    def disable(self) -> None:
        self.enabled = False
        for instrument in self._instruments.values():
            instrument._on = False

    def reset(self) -> None:
        """Drop all recorded series (instruments themselves persist)."""
        for instrument in self._instruments.values():
            instrument.clear()

    # -- convenience reads ---------------------------------------------------

    def value(self, name: str, labels: Sequence[str] = ()):
        """Counter/gauge value by name (0 when absent/never recorded)."""
        instrument = self._instruments.get(name)
        if instrument is None or isinstance(instrument, Histogram):
            return 0
        return instrument.value(labels)

    def counter_total(self, name: str):
        instrument = self._instruments.get(name)
        if not isinstance(instrument, Counter):
            return 0
        return instrument.total()

    # -- exports -------------------------------------------------------------

    def snapshot(self) -> dict:
        """A plain-dict copy of every recorded series (deep, isolated)."""
        counters: dict = {}
        gauges: dict = {}
        histograms: dict = {}
        for instrument in self:
            series_out: dict = {}
            if isinstance(instrument, Histogram):
                for key, series in instrument.labeled_series():
                    series_out[",".join(key)] = {
                        "count": series.count,
                        "sum": series.sum,
                        "min": None if series.count == 0 else series.min,
                        "max": None if series.count == 0 else series.max,
                        "p50": instrument.percentile(0.50, key),
                        "p95": instrument.percentile(0.95, key),
                        "p99": instrument.percentile(0.99, key),
                        "buckets": {
                            _format_number(bound): count
                            for bound, count in zip(
                                instrument.buckets + (math.inf,),
                                series.counts)
                        },
                    }
                if instrument._series:
                    histograms[instrument.name] = {
                        "labels": list(instrument.label_names),
                        "series": series_out,
                    }
                continue
            for key, value in instrument.labeled_series():
                series_out[",".join(key)] = value
            if series_out:
                target = counters if isinstance(instrument, Counter) \
                    else gauges
                target[instrument.name] = {
                    "labels": list(instrument.label_names),
                    "series": series_out,
                }
        return {"enabled": self.enabled, "counters": counters,
                "gauges": gauges, "histograms": histograms}

    def to_json(self, indent: Optional[int] = 2) -> str:
        def _default(value):
            if isinstance(value, float) and not math.isfinite(value):
                return repr(value)
            raise TypeError(f"not JSON-serializable: {value!r}")

        snap = self.snapshot()
        return json.dumps(_jsonable(snap), indent=indent, sort_keys=True,
                          default=_default)

    def to_prometheus(self) -> str:
        """Text exposition format (0.0.4): HELP/TYPE plus one line per
        series; histograms expand to ``_bucket``/``_sum``/``_count``."""
        lines: list[str] = []
        for instrument in self:
            if not instrument._series:
                continue
            name = instrument.name
            if instrument.help:
                lines.append(f"# HELP {name} {instrument.help}")
            lines.append(f"# TYPE {name} {instrument.kind}")
            if isinstance(instrument, Histogram):
                for key, series in instrument.labeled_series():
                    base = _label_pairs(instrument.label_names, key)
                    cumulative = 0
                    for bound, count in zip(
                            instrument.buckets + (math.inf,),
                            series.counts):
                        cumulative += count
                        le = _format_number(
                            float(bound) if not math.isinf(bound)
                            else math.inf)
                        pairs = base + [f'le="{le}"']
                        lines.append(
                            f"{name}_bucket{{{','.join(pairs)}}} "
                            f"{cumulative}")
                    suffix = f"{{{','.join(base)}}}" if base else ""
                    lines.append(f"{name}_sum{suffix} "
                                 f"{_format_number(series.sum)}")
                    lines.append(f"{name}_count{suffix} {series.count}")
                continue
            for key, value in instrument.labeled_series():
                pairs = _label_pairs(instrument.label_names, key)
                suffix = f"{{{','.join(pairs)}}}" if pairs else ""
                lines.append(f"{name}{suffix} {_format_number(value)}")
        return "\n".join(lines) + ("\n" if lines else "")


def _label_pairs(names: Sequence[str], values: Sequence[str]) -> list[str]:
    escaped = (str(v).replace("\\", "\\\\").replace('"', '\\"')
               .replace("\n", "\\n") for v in values)
    return [f'{n}="{v}"' for n, v in zip(names, escaped)]


def _jsonable(value):
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


#: The process-global registry every subsystem binds its instruments to.
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-global registry (disabled until someone enables it)."""
    return _REGISTRY
