"""EXPLAIN ANALYZE: the algebra tree with measured per-operator cost.

``Executor.run_ids_explained`` times every ``_eval`` dispatch and
returns ``{id(op): stats}`` records; this module folds those records
back onto the (immutable, shared-substructure) algebra tree, computes
exclusive ("self") time by subtracting child-inclusive time, and
renders the familiar plan-tree text.

Two result shapes:

* :class:`QueryExplain` — one engine-level execution: operator tree,
  row counts, decode cost, the materialized table.
* :class:`RoutedExplain` — the online module's full story: the routing
  decision (candidate views, quarantined views, which one answered and
  why, rewrite cost) wrapped around the :class:`QueryExplain` of the
  plan that actually ran.

This module imports the sparql layer, so :mod:`repro.obs` exposes it
lazily — importing ``repro.obs`` alone never pulls in the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..sparql.algebra import (AlgebraOp, BGPOp, DistinctOp, ExtendOp,
                              FilterOp, GroupOp, JoinOp, LeftJoinOp,
                              OrderByOp, ProjectOp, SliceOp, TableOp,
                              UnionOp, UnitOp)

__all__ = ["ExplainNode", "QueryExplain", "RoutedExplain",
           "build_query_explain"]


def _children_of(op: AlgebraOp) -> tuple[AlgebraOp, ...]:
    if isinstance(op, (JoinOp, LeftJoinOp)):
        return (op.left, op.right)
    if isinstance(op, UnionOp):
        return tuple(op.branches)
    child = getattr(op, "child", None)
    return (child,) if child is not None else ()


def _describe(op: AlgebraOp) -> str:
    if isinstance(op, BGPOp):
        return f"{len(op.patterns)} pattern(s)"
    if isinstance(op, FilterOp):
        return "filter"
    if isinstance(op, ExtendOp):
        return f"bind ?{op.var.name}"
    if isinstance(op, GroupOp):
        keys = ", ".join(f"?{v.name}" for v in op.keys)
        aggs = ", ".join(f"?{v.name}" for v, _ in op.aggregates)
        return f"by [{keys}] computing [{aggs}]"
    if isinstance(op, ProjectOp):
        return ", ".join(f"?{v.name}" for v in op.variables)
    if isinstance(op, OrderByOp):
        return f"{len(op.conditions)} key(s)"
    if isinstance(op, SliceOp):
        limit = "all" if op.limit is None else op.limit
        return f"offset={op.offset} limit={limit}"
    if isinstance(op, TableOp):
        return f"{len(op.rows)} inline row(s)"
    if isinstance(op, (UnitOp, DistinctOp, JoinOp, LeftJoinOp, UnionOp)):
        return ""
    return ""


@dataclass
class ExplainNode:
    """One operator of the executed plan, with measured cost."""

    operator: str
    detail: str
    calls: int
    rows_in: int
    rows_out: int
    seconds: float              #: inclusive wall time (children included)
    self_seconds: float         #: exclusive wall time
    children: list["ExplainNode"] = field(default_factory=list)

    def render(self, indent: int = 0) -> str:
        label = self.operator + (f" [{self.detail}]" if self.detail else "")
        line = (f"{'  ' * indent}{label}  "
                f"rows={self.rows_out}  calls={self.calls}  "
                f"time={self.seconds * 1e3:.3f}ms  "
                f"self={self.self_seconds * 1e3:.3f}ms")
        return "\n".join([line] + [c.render(indent + 1)
                                   for c in self.children])

    def to_dict(self) -> dict:
        return {
            "operator": self.operator,
            "detail": self.detail,
            "calls": self.calls,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "seconds": round(self.seconds, 9),
            "self_seconds": round(self.self_seconds, 9),
            "children": [c.to_dict() for c in self.children],
        }

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


def _build_node(op: AlgebraOp, records: dict) -> ExplainNode:
    stats = records.get(id(op))
    children = [_build_node(c, records) for c in _children_of(op)]
    seconds = stats.seconds if stats is not None else 0.0
    child_seconds = sum(c.seconds for c in children)
    return ExplainNode(
        operator=type(op).__name__.removesuffix("Op"),
        detail=_describe(op),
        calls=stats.calls if stats is not None else 0,
        rows_in=stats.rows_in if stats is not None else 0,
        rows_out=stats.rows_out if stats is not None else 0,
        seconds=seconds,
        self_seconds=max(0.0, seconds - child_seconds),
        children=children,
    )


@dataclass
class QueryExplain:
    """EXPLAIN ANALYZE of one engine-level execution."""

    text: str                   #: the query text (best-effort)
    root: ExplainNode
    rows: int                   #: rows in the decoded result table
    total_seconds: float        #: execute + decode wall clock
    decode_seconds: float       #: total minus plan-inclusive time
    table: object               #: the materialized ResultTable

    def render(self) -> str:
        header = (f"EXPLAIN ANALYZE  rows={self.rows}  "
                  f"total={self.total_seconds * 1e3:.3f}ms  "
                  f"decode={self.decode_seconds * 1e3:.3f}ms")
        return header + "\n" + self.root.render(indent=1)

    def to_dict(self) -> dict:
        return {
            "text": self.text,
            "rows": self.rows,
            "total_seconds": round(self.total_seconds, 9),
            "decode_seconds": round(self.decode_seconds, 9),
            "plan": self.root.to_dict(),
        }


def build_query_explain(prepared, table, records: dict,
                        total_seconds: float) -> QueryExplain:
    """Fold executor timing records onto the prepared plan tree."""
    root = _build_node(prepared.plan, records)
    return QueryExplain(
        text=getattr(prepared.ast, "text", "") or "",
        root=root,
        rows=len(table),
        total_seconds=total_seconds,
        decode_seconds=max(0.0, total_seconds - root.seconds),
        table=table,
    )


@dataclass
class RoutedExplain:
    """A :class:`QueryExplain` plus the routing decision around it."""

    query: str                  #: human description of the analytical query
    route: str                  #: "view" or "base"
    why: str                    #: one-line routing rationale
    view: Optional[str]         #: label of the answering view, if any
    candidates: list[dict]      #: considered views: label/groups/stale
    quarantined: list[str]      #: labels excluded by quarantine
    rewrite_seconds: float      #: query-rewrite cost (view route only)
    plan: QueryExplain          #: the execution that produced the answer

    def render(self) -> str:
        lines = [f"QUERY  {self.query}",
                 f"ROUTE  {self.route}"
                 + (f" via {self.view}" if self.view else "")
                 + f" — {self.why}"]
        if self.candidates:
            listed = ", ".join(
                f"{c['label']} (groups={c['groups']}"
                + (", stale" if c.get("stale") else "") + ")"
                for c in self.candidates)
            lines.append(f"CANDIDATES  {listed}")
        if self.quarantined:
            lines.append(f"QUARANTINED  {', '.join(self.quarantined)}")
        if self.route == "view":
            lines.append(f"REWRITE  {self.rewrite_seconds * 1e6:.1f} µs")
        lines.append(self.plan.render())
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "query": self.query,
            "route": self.route,
            "why": self.why,
            "view": self.view,
            "candidates": list(self.candidates),
            "quarantined": list(self.quarantined),
            "rewrite_seconds": round(self.rewrite_seconds, 9),
            "plan": self.plan.to_dict(),
        }
