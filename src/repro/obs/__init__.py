"""Unified observability: spans, metrics, EXPLAIN ANALYZE, logging.

Three surfaces over one switchboard:

* :mod:`repro.obs.metrics` — a process-global registry of counters,
  gauges, and fixed-bucket histograms fed by the engine/maintenance hot
  seams; snapshotable as a dict, exportable as JSON or Prometheus text.
* :mod:`repro.obs.tracing` — a context-var span tracer producing
  nested, tagged wall-clock traces of executor runs, maintenance
  windows, rollup stages, persistence, and audits.
* :mod:`repro.obs.explain` — EXPLAIN ANALYZE over the SPARQL algebra:
  per-operator wall time and row counts, plus the online module's
  routing decision (which view answered and why).

All three converge on the :class:`ObservabilityHub` (``obs.hub()``,
also reachable as ``Sofos.obs``), which enables/disables collection as
a unit and emits combined snapshots for the console panel and the
``BENCH_*.json`` dumps.

Everything is **off by default**; the disabled overhead on hot paths is
one attribute read (see the module docstrings for the mechanics).

The module also carries the structured-logging backbone: every
subsystem logs under the ``"repro"`` namespace, which gets a
``NullHandler`` at import (library etiquette — silent unless the host
opts in) and a console handler via :func:`configure_logging`.

``explain`` is exported lazily (module ``__getattr__``) because it
imports the sparql layer, which itself imports :mod:`repro.obs.metrics`
— the eager half of this package stays stdlib-only.
"""

from __future__ import annotations

import json as _json
import logging
import sys
from typing import Optional, TextIO

from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      DEFAULT_LATENCY_BUCKETS, DEFAULT_SIZE_BUCKETS,
                      registry)
from .tracing import Span, SpanTracer, annotate, current, span, tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "registry",
    "Span",
    "SpanTracer",
    "annotate",
    "current",
    "span",
    "tracer",
    "ObservabilityHub",
    "hub",
    "ROOT_LOGGER_NAME",
    "configure_logging",
    "get_logger",
    # lazily resolved from .explain (see __getattr__):
    "ExplainNode",
    "QueryExplain",
    "RoutedExplain",
    "build_query_explain",
]

# -- logging backbone --------------------------------------------------------

ROOT_LOGGER_NAME = "repro"

#: Library etiquette: no output unless the host application configures
#: a handler (or calls configure_logging below).
logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())

_DEFAULT_HANDLER: Optional[logging.Handler] = None


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` namespace (``get_logger("views")``
    → ``repro.views``); the bare root logger when ``name`` is empty."""
    if not name or name == ROOT_LOGGER_NAME:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def configure_logging(level: int = logging.INFO,
                      stream: Optional[TextIO] = None,
                      fmt: str = "%(levelname)-8s %(name)s  %(message)s"
                      ) -> logging.Logger:
    """Install (or replace) the default console handler for ``repro.*``.

    Idempotent: calling again swaps the previous default handler rather
    than stacking duplicates.  ``stream`` defaults to stderr; demos that
    want their narration on stdout pass ``stream=sys.stdout``.
    """
    global _DEFAULT_HANDLER
    root = logging.getLogger(ROOT_LOGGER_NAME)
    if _DEFAULT_HANDLER is not None:
        root.removeHandler(_DEFAULT_HANDLER)
    handler = logging.StreamHandler(stream if stream is not None
                                    else sys.stderr)
    handler.setFormatter(logging.Formatter(fmt))
    root.addHandler(handler)
    root.setLevel(level)
    _DEFAULT_HANDLER = handler
    return root


# -- the hub -----------------------------------------------------------------

class ObservabilityHub:
    """One switch for all collection surfaces, one combined snapshot."""

    def __init__(self, metrics_registry: Optional[MetricsRegistry] = None,
                 span_tracer: Optional[SpanTracer] = None) -> None:
        self.metrics = metrics_registry if metrics_registry is not None \
            else registry()
        self.tracer = span_tracer if span_tracer is not None else tracer()

    @property
    def enabled(self) -> bool:
        return self.metrics.enabled or self.tracer.enabled

    def enable(self, *, metrics: bool = True, tracing: bool = True) -> None:
        if metrics:
            self.metrics.enable()
        if tracing:
            self.tracer.enable()

    def disable(self) -> None:
        self.metrics.disable()
        self.tracer.disable()

    def reset(self) -> None:
        """Drop recorded series and finished spans (switches unchanged)."""
        self.metrics.reset()
        self.tracer.reset()

    def snapshot(self, *, span_limit: int = 16) -> dict:
        return {
            "enabled": {"metrics": self.metrics.enabled,
                        "tracing": self.tracer.enabled},
            "metrics": self.metrics.snapshot(),
            "spans": [s.to_dict()
                      for s in self.tracer.recent(span_limit)],
        }

    def to_json(self, indent: Optional[int] = 2, *,
                span_limit: int = 16) -> str:
        return _json.dumps(self.snapshot(span_limit=span_limit),
                           indent=indent, sort_keys=True, default=str)

    def to_prometheus(self) -> str:
        return self.metrics.to_prometheus()

    def dump(self, path: str, *, span_limit: int = 64) -> str:
        """Write the combined snapshot as JSON; returns ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json(span_limit=span_limit))
            handle.write("\n")
        return path


_HUB = ObservabilityHub()


def hub() -> ObservabilityHub:
    """The process-global hub over the global registry and tracer."""
    return _HUB


# -- lazy explain surface ----------------------------------------------------

_EXPLAIN_NAMES = ("ExplainNode", "QueryExplain", "RoutedExplain",
                  "build_query_explain")


def __getattr__(name: str):
    if name in _EXPLAIN_NAMES:
        from . import explain
        return getattr(explain, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
