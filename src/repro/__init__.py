"""SOFOS reproduction: materialized view selection on knowledge graphs.

Reproduces *Sofos: Demonstrating the Challenges of Materialized View
Selection on Knowledge Graphs* (Troullinou, Kondylakis, Lissandrini,
Mottin; SIGMOD 2021 demo) as a self-contained Python library: an RDF
store, a SPARQL analytical engine, view lattices over analytical facets,
six cost models, selection strategies, MARVEL-style view materialization,
and query rewriting — plus the three demo datasets and the benchmark
harness regenerating every demonstration experiment.

Quick start::

    from repro import Sofos, load_dataset

    loaded = load_dataset("dbpedia", "small")
    sofos = Sofos(loaded.graph, loaded.facet("population_by_language_year"))
    report = sofos.compare_cost_models(k=2, dataset_name="dbpedia")
    print(report.render())
"""

from .core.sofos import DEFAULT_MODELS, Sofos
from .core.metrics import QueryOutcome, WorkloadRun
from .core.online import Answer
from .core.report import ComparisonReport, ComparisonRow
from .cost import AggregatedValuesCost, CostModel, LatticeProfile, \
    LearnedCost, NodeCountCost, RandomCost, TripleCountCost, \
    UserDefinedCost, create_model, model_names
from .cube import AnalyticalFacet, AnalyticalQuery, FilterCondition, \
    ViewDefinition, ViewLattice
from .datasets import load_dataset
from .errors import CatalogCorruptError, FailpointError, ReproError, \
    SimulatedCrash
from .resilience import ConsistencyAuditor, failpoints
from .rdf import Dataset, Graph, IRI, Literal, Namespace, Triple, Variable, \
    parse_ntriples, parse_turtle, serialize_ntriples, serialize_turtle, \
    typed_literal
from .selection import AnnealingSelector, ExhaustiveSelector, \
    GreedySelector, SelectionResult, SpaceBudgetSelector, UserSelection
from .sparql import QueryEngine, ResultTable, parse_query
from .views import ViewCatalog, ViewRouter, rewrite_on_view
from .workload import WorkloadConfig, WorkloadGenerator

__version__ = "1.0.0"

__all__ = [
    "AggregatedValuesCost", "AnalyticalFacet", "AnalyticalQuery",
    "AnnealingSelector", "Answer",
    "CatalogCorruptError", "ComparisonReport", "ComparisonRow",
    "ConsistencyAuditor", "CostModel", "DEFAULT_MODELS",
    "Dataset", "ExhaustiveSelector", "FailpointError", "FilterCondition",
    "Graph", "SimulatedCrash", "failpoints",
    "GreedySelector", "IRI", "LatticeProfile", "LearnedCost", "Literal",
    "Namespace", "NodeCountCost", "QueryEngine", "QueryOutcome",
    "RandomCost", "ReproError", "ResultTable", "SelectionResult", "Sofos",
    "SpaceBudgetSelector", "Triple", "TripleCountCost", "UserDefinedCost",
    "UserSelection", "Variable", "ViewCatalog", "ViewDefinition",
    "ViewLattice", "ViewRouter", "WorkloadConfig", "WorkloadGenerator",
    "WorkloadRun", "create_model", "load_dataset", "model_names",
    "parse_ntriples", "parse_query", "parse_turtle", "rewrite_on_view",
    "serialize_ntriples", "serialize_turtle", "typed_literal",
]
