"""SOFOS reproduction: materialized view selection on knowledge graphs.

Reproduces *Sofos: Demonstrating the Challenges of Materialized View
Selection on Knowledge Graphs* (Troullinou, Kondylakis, Lissandrini,
Mottin; SIGMOD 2021 demo) as a self-contained Python library: an RDF
store, a SPARQL analytical engine, view lattices over analytical facets,
six cost models, selection strategies, MARVEL-style view materialization,
and query rewriting — plus the three demo datasets and the benchmark
harness regenerating every demonstration experiment.

Quick start::

    from repro import Sofos, load_dataset, obs

    obs.configure_logging()          # structured logs on stderr
    log = obs.get_logger("quickstart")

    loaded = load_dataset("dbpedia", "small")
    sofos = Sofos(loaded.graph, loaded.facet("population_by_language_year"))
    report = sofos.compare_cost_models(k=2, dataset_name="dbpedia")
    log.info("cost-model comparison:\\n%s", report.render())

To watch what the engine is doing, enable the observability hub and ask
for an EXPLAIN ANALYZE::

    sofos.obs.enable()
    print(sofos.explain("SELECT ...").render())
    print(sofos.obs.metrics.to_prometheus())

The storage layout is pluggable.  The default backend keeps the three
permutation indexes as nested dicts; the columnar backend keeps them as
sorted contiguous id-columns with binary-search probes and vectorized
batch kernels (fastest for analytical scans/joins on a static graph)::

    from repro import Graph

    g = Graph(store="columnar")      # or REPRO_STORE=columnar in the env
    g.add(triple)
    print(g.store_kind)              # "columnar"
"""

from .core.sofos import DEFAULT_MODELS, Sofos
from .core.metrics import QueryOutcome, WorkloadRun
from .core.online import Answer
from .core.report import ComparisonReport, ComparisonRow
from .cost import AggregatedValuesCost, CostModel, LatticeProfile, \
    LearnedCost, NodeCountCost, RandomCost, TripleCountCost, \
    UserDefinedCost, create_model, model_names
from .cube import AnalyticalFacet, AnalyticalQuery, FilterCondition, \
    ViewDefinition, ViewLattice
from .datasets import load_dataset
from .errors import CatalogCorruptError, FailpointError, ReproError, \
    SimulatedCrash
from . import obs
from .obs import ObservabilityHub, configure_logging, get_logger
from .resilience import ConsistencyAuditor, failpoints
from .rdf import Dataset, Graph, IRI, Literal, Namespace, Triple, Variable, \
    parse_ntriples, parse_turtle, serialize_ntriples, serialize_turtle, \
    typed_literal
from .selection import AnnealingSelector, ExhaustiveSelector, \
    GreedySelector, SelectionResult, SpaceBudgetSelector, UserSelection
from .sparql import QueryEngine, ResultTable, parse_query
from .views import ViewCatalog, ViewRouter, rewrite_on_view
from .workload import WorkloadConfig, WorkloadGenerator

__version__ = "1.0.0"

__all__ = [
    "AggregatedValuesCost", "AnalyticalFacet", "AnalyticalQuery",
    "AnnealingSelector", "Answer",
    "CatalogCorruptError", "ComparisonReport", "ComparisonRow",
    "ConsistencyAuditor", "CostModel", "DEFAULT_MODELS",
    "Dataset", "ExhaustiveSelector", "FailpointError", "FilterCondition",
    "Graph", "SimulatedCrash", "failpoints",
    "GreedySelector", "IRI", "LatticeProfile", "LearnedCost", "Literal",
    "Namespace", "NodeCountCost", "ObservabilityHub", "QueryEngine",
    "QueryOutcome",
    "RandomCost", "ReproError", "ResultTable", "SelectionResult", "Sofos",
    "SpaceBudgetSelector", "Triple", "TripleCountCost", "UserDefinedCost",
    "UserSelection", "Variable", "ViewCatalog", "ViewDefinition",
    "ViewLattice", "ViewRouter", "WorkloadConfig", "WorkloadGenerator",
    "WorkloadRun", "configure_logging", "create_model", "get_logger",
    "load_dataset", "model_names", "obs",
    "parse_ntriples", "parse_query", "parse_turtle", "rewrite_on_view",
    "serialize_ntriples", "serialize_turtle", "typed_literal",
]
