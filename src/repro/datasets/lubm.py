"""A LUBM-style university benchmark generator (Guo, Pan & Heflin 2005).

Reimplements the univ-bench data generator in Python: universities contain
departments; departments employ full/associate/assistant professors and
lecturers; students (graduate and undergraduate) are members of
departments, take the courses faculty teach, and graduate students have
advisors; faculty and graduate students write publications.  The entity
ratios follow the published generator's defaults, scaled down by the
``department`` range so laptop-scale graphs remain faithful in shape.

Scale knob: ``universities`` (LUBM's own scale factor) plus an optional
``departments`` override for small test graphs.  Deterministic by seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..rdf.graph import Graph
from ..rdf.namespace import RDF, Namespace
from ..rdf.terms import IRI, Literal, typed_literal
from ..rdf.triples import Triple
from .base import check_positive, pick_count

__all__ = ["UB", "LUBMConfig", "generate_lubm"]

#: The univ-bench vocabulary namespace.
UB = Namespace("http://swat.cse.lehigh.edu/onto/univ-bench.owl#")

_RESEARCH_AREAS = [f"Research{i}" for i in range(25)]

_FACULTY_RANKS = (
    ("FullProfessor", 7, 10),
    ("AssociateProfessor", 10, 14),
    ("AssistantProfessor", 8, 11),
    ("Lecturer", 5, 7),
)


@dataclass(frozen=True)
class LUBMConfig:
    """Generator parameters (defaults mirror UBA 1.7 ratios)."""

    universities: int = 1
    departments_min: int = 15
    departments_max: int = 25
    undergrad_per_faculty_min: int = 8
    undergrad_per_faculty_max: int = 14
    grad_per_faculty_min: int = 3
    grad_per_faculty_max: int = 4
    courses_per_faculty_min: int = 1
    courses_per_faculty_max: int = 2
    publications_min: int = 0
    publications_max: int = 5
    undergrad_courses_taken: tuple[int, int] = (2, 4)
    grad_courses_taken: tuple[int, int] = (1, 3)
    seed: int = 0

    def scaled(self, fraction: float) -> "LUBMConfig":
        """A smaller configuration with the same shape (for tests)."""
        def shrink(value: int) -> int:
            return max(1, round(value * fraction))

        return LUBMConfig(
            universities=self.universities,
            departments_min=shrink(self.departments_min),
            departments_max=shrink(self.departments_max),
            undergrad_per_faculty_min=shrink(self.undergrad_per_faculty_min),
            undergrad_per_faculty_max=shrink(self.undergrad_per_faculty_max),
            grad_per_faculty_min=max(1, shrink(self.grad_per_faculty_min)),
            grad_per_faculty_max=max(1, shrink(self.grad_per_faculty_max)),
            courses_per_faculty_min=self.courses_per_faculty_min,
            courses_per_faculty_max=self.courses_per_faculty_max,
            publications_min=self.publications_min,
            publications_max=shrink(self.publications_max),
            undergrad_courses_taken=self.undergrad_courses_taken,
            grad_courses_taken=self.grad_courses_taken,
            seed=self.seed,
        )


def generate_lubm(config: LUBMConfig | None = None,
                  graph: Graph | None = None) -> Graph:
    """Generate a LUBM-style graph (see module docstring)."""
    if config is None:
        config = LUBMConfig()
    check_positive("universities", config.universities)
    if graph is None:
        graph = Graph()
    rng = random.Random(config.seed)
    add = graph.add

    for u in range(config.universities):
        university = IRI(f"http://www.university{u}.edu")
        add(Triple(university, RDF.type, UB.University))
        add(Triple(university, UB.name, Literal(f"University{u}")))
        n_departments = pick_count(rng, config.departments_min,
                                   config.departments_max)
        for d in range(n_departments):
            _generate_department(graph, rng, config, university, u, d)
    return graph


def _generate_department(graph: Graph, rng: random.Random,
                         config: LUBMConfig, university: IRI,
                         u: int, d: int) -> None:
    add = graph.add
    base = f"http://www.department{d}.university{u}.edu"
    department = IRI(base)
    add(Triple(department, RDF.type, UB.Department))
    add(Triple(department, UB.name, Literal(f"Department{d}")))
    add(Triple(department, UB.subOrganizationOf, university))

    faculty: list[IRI] = []
    courses: list[IRI] = []
    grad_courses: list[IRI] = []
    course_counter = 0

    for rank, low, high in _FACULTY_RANKS:
        for i in range(pick_count(rng, low, high)):
            person = IRI(f"{base}/{rank}{i}")
            add(Triple(person, RDF.type, UB[rank]))
            add(Triple(person, UB.name, Literal(f"{rank}{i}")))
            add(Triple(person, UB.worksFor, department))
            add(Triple(person, UB.emailAddress,
                       Literal(f"{rank}{i}@department{d}.university{u}.edu")))
            add(Triple(person, UB.researchInterest,
                       Literal(rng.choice(_RESEARCH_AREAS))))
            faculty.append(person)
            for _ in range(pick_count(rng, config.courses_per_faculty_min,
                                      config.courses_per_faculty_max)):
                course = IRI(f"{base}/Course{course_counter}")
                course_counter += 1
                add(Triple(course, RDF.type, UB.Course))
                add(Triple(course, UB.name,
                           Literal(f"Course{course_counter}")))
                add(Triple(person, UB.teacherOf, course))
                courses.append(course)
            graduate_course = IRI(f"{base}/GraduateCourse{course_counter}")
            course_counter += 1
            add(Triple(graduate_course, RDF.type, UB.GraduateCourse))
            add(Triple(graduate_course, UB.name,
                       Literal(f"GraduateCourse{course_counter}")))
            add(Triple(person, UB.teacherOf, graduate_course))
            grad_courses.append(graduate_course)
            for p in range(pick_count(rng, config.publications_min,
                                      config.publications_max)):
                publication = IRI(f"{base}/{rank}{i}/Publication{p}")
                add(Triple(publication, RDF.type, UB.Publication))
                add(Triple(publication, UB.publicationAuthor, person))

    n_faculty = len(faculty)
    n_undergrad = n_faculty * pick_count(
        rng, config.undergrad_per_faculty_min,
        config.undergrad_per_faculty_max)
    for i in range(n_undergrad):
        student = IRI(f"{base}/UndergraduateStudent{i}")
        add(Triple(student, RDF.type, UB.UndergraduateStudent))
        add(Triple(student, UB.name, Literal(f"UndergraduateStudent{i}")))
        add(Triple(student, UB.memberOf, department))
        low, high = config.undergrad_courses_taken
        for course in rng.sample(courses, min(pick_count(rng, low, high),
                                              len(courses))):
            add(Triple(student, UB.takesCourse, course))

    n_grad = n_faculty * pick_count(rng, config.grad_per_faculty_min,
                                    config.grad_per_faculty_max)
    for i in range(n_grad):
        student = IRI(f"{base}/GraduateStudent{i}")
        add(Triple(student, RDF.type, UB.GraduateStudent))
        add(Triple(student, UB.name, Literal(f"GraduateStudent{i}")))
        add(Triple(student, UB.memberOf, department))
        add(Triple(student, UB.advisor, rng.choice(faculty)))
        add(Triple(student, UB.undergraduateDegreeFrom,
                   IRI(f"http://www.university{rng.randrange(max(u, 1) + 2)}.edu")))
        low, high = config.grad_courses_taken
        for course in rng.sample(grad_courses,
                                 min(pick_count(rng, low, high),
                                     len(grad_courses))):
            add(Triple(student, UB.takesCourse, course))
        if rng.random() < 0.2:
            publication = IRI(f"{base}/GraduateStudent{i}/Publication0")
            add(Triple(publication, RDF.type, UB.Publication))
            add(Triple(publication, UB.publicationAuthor, student))
