"""A Semantic Web Dog Food-style scholarly knowledge graph.

SWDF was the community crawl of Semantic Web conference metadata
(conferences, editions, papers, people, organizations).  This generator
produces the same shape with the swrc/swc-style vocabulary: conference
series hold yearly editions; papers are presented at editions within
tracks; each paper has one or more authors affiliated with organizations
located in countries.  Author multiplicity again makes naive COUNT facets
interesting (a paper with three authors appears three times in an
author-joined aggregation).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..rdf.graph import Graph
from ..rdf.namespace import RDF, Namespace
from ..rdf.terms import IRI, Literal, typed_literal
from ..rdf.triples import Triple
from .base import ZipfSampler, check_positive, pick_count

__all__ = ["SWDF", "SWDFConfig", "generate_swdf"]

#: Vocabulary namespace of the synthetic dog-food KG.
SWDF = Namespace("http://data.semanticweb.org/ns/")

_SERIES = ("ISWC", "ESWC", "WWW", "SIGMOD", "VLDB", "CIKM")
_TRACKS = ("Research", "InUse", "Resource", "Industry", "Demo", "Poster")
_COUNTRY_NAMES = (
    "Germany", "USA", "Italy", "France", "Greece", "Denmark", "Netherlands",
    "UK", "Spain", "Austria", "China", "Japan", "Australia", "Brazil",
    "Canada", "India",
)


@dataclass(frozen=True)
class SWDFConfig:
    """Generator parameters for the scholarly KG."""

    series: tuple[str, ...] = _SERIES
    years: tuple[int, ...] = tuple(range(2014, 2020))
    papers_per_edition_min: int = 25
    papers_per_edition_max: int = 60
    authors_pool: int = 400
    organizations: int = 80
    authors_per_paper_min: int = 1
    authors_per_paper_max: int = 4
    author_zipf: float = 0.8
    seed: int = 0


def generate_swdf(config: SWDFConfig | None = None,
                  graph: Graph | None = None) -> Graph:
    """Generate the scholarly KG (see module docstring)."""
    if config is None:
        config = SWDFConfig()
    check_positive("authors_pool", config.authors_pool)
    check_positive("organizations", config.organizations)
    if graph is None:
        graph = Graph()
    rng = random.Random(config.seed)
    add = graph.add

    countries = [SWDF[f"country/{name}"] for name in _COUNTRY_NAMES]
    for iri, name in zip(countries, _COUNTRY_NAMES):
        add(Triple(iri, RDF.type, SWDF.Country))
        add(Triple(iri, SWDF.name, Literal(name)))

    organizations = []
    for i in range(config.organizations):
        organization = SWDF[f"org/Org{i}"]
        add(Triple(organization, RDF.type, SWDF.Organization))
        add(Triple(organization, SWDF.name, Literal(f"Org{i}")))
        add(Triple(organization, SWDF.basedIn, rng.choice(countries)))
        organizations.append(organization)

    authors = []
    for i in range(config.authors_pool):
        author = SWDF[f"person/Author{i}"]
        add(Triple(author, RDF.type, SWDF.Person))
        add(Triple(author, SWDF.name, Literal(f"Author{i}")))
        add(Triple(author, SWDF.affiliation, rng.choice(organizations)))
        authors.append(author)
    author_sampler = ZipfSampler(authors, config.author_zipf, rng)

    tracks = {name: SWDF[f"track/{name}"] for name in _TRACKS}
    for name, iri in tracks.items():
        add(Triple(iri, RDF.type, SWDF.Track))
        add(Triple(iri, SWDF.name, Literal(name)))

    paper_counter = 0
    for series_name in config.series:
        series = SWDF[f"series/{series_name}"]
        add(Triple(series, RDF.type, SWDF.ConferenceSeries))
        add(Triple(series, SWDF.name, Literal(series_name)))
        for year in config.years:
            edition = SWDF[f"event/{series_name}{year}"]
            add(Triple(edition, RDF.type, SWDF.ConferenceEvent))
            add(Triple(edition, SWDF.ofSeries, series))
            add(Triple(edition, SWDF.year, typed_literal(year)))
            n_papers = pick_count(rng, config.papers_per_edition_min,
                                  config.papers_per_edition_max)
            for _ in range(n_papers):
                paper = SWDF[f"paper/Paper{paper_counter}"]
                paper_counter += 1
                add(Triple(paper, RDF.type, SWDF.InProceedings))
                add(Triple(paper, SWDF.title,
                           Literal(f"Paper {paper_counter}")))
                add(Triple(paper, SWDF.presentedAt, edition))
                add(Triple(paper, SWDF.track,
                           tracks[rng.choice(_TRACKS)]))
                n_authors = pick_count(rng, config.authors_per_paper_min,
                                       config.authors_per_paper_max)
                for author in author_sampler.sample_distinct(n_authors):
                    add(Triple(paper, SWDF.author, author))
    return graph
