"""A DBpedia-style country/language/population knowledge graph.

This is the paper's running example (Figure 1 / Example 1.1) grown into a
data cube: countries belong to continents (and possibly unions such as the
EU), speak one or more official languages, and carry yearly population
census observations.  Populations are modelled as observation entities —
``?obs dbp:ofCountry ?c ; dbp:year ?y ; dbp:population ?p`` — so the facet
pattern joins observations with country metadata exactly the way aggregate
SPARQL queries over DBpedia do.

Multi-valued languages are intentional: joining observations with
languages duplicates population rows per language, the classic KG
aggregation pitfall the demo discusses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..rdf.graph import Graph
from ..rdf.namespace import RDF, Namespace
from ..rdf.terms import IRI, Literal, typed_literal
from ..rdf.triples import Triple
from .base import ZipfSampler, check_positive, pick_count

__all__ = ["DBP", "DBPediaConfig", "generate_dbpedia"]

#: The vocabulary namespace of the synthetic DBpedia-like KG.
DBP = Namespace("http://dbpedia.org/ontology/")

_CONTINENTS = ("Europe", "Asia", "Africa", "NorthAmerica", "SouthAmerica",
               "Oceania")

_LANGUAGE_NAMES = (
    "English", "French", "German", "Spanish", "Portuguese", "Italian",
    "Dutch", "Russian", "Mandarin", "Hindi", "Arabic", "Swahili",
    "Japanese", "Korean", "Turkish", "Polish", "Greek", "Swedish",
    "Danish", "Norwegian", "Finnish", "Czech", "Hungarian", "Romanian",
    "Bulgarian", "Thai", "Vietnamese", "Malay", "Tagalog", "Bengali",
    "Urdu", "Persian", "Hebrew", "Amharic", "Zulu", "Hausa", "Yoruba",
    "Quechua", "Guarani", "Maori",
)


@dataclass(frozen=True)
class DBPediaConfig:
    """Generator parameters for the population cube."""

    countries: int = 60
    years: tuple[int, ...] = tuple(range(2010, 2020))
    languages_min: int = 1
    languages_max: int = 3
    language_zipf: float = 1.1
    union_fraction: float = 0.35   # chance a European country is in the EU
    population_min: int = 100_000
    population_max: int = 150_000_000
    growth_rate: float = 0.01
    seed: int = 0


def generate_dbpedia(config: DBPediaConfig | None = None,
                     graph: Graph | None = None) -> Graph:
    """Generate the population-cube KG (see module docstring)."""
    if config is None:
        config = DBPediaConfig()
    check_positive("countries", config.countries)
    if not config.years:
        raise ValueError("need at least one census year")
    if graph is None:
        graph = Graph()
    rng = random.Random(config.seed)
    add = graph.add

    languages = [DBP[f"language/{name}"] for name in _LANGUAGE_NAMES]
    for iri, name in zip(languages, _LANGUAGE_NAMES):
        add(Triple(iri, RDF.type, DBP.Language))
        add(Triple(iri, DBP.name, Literal(name)))

    continents = {name: DBP[f"continent/{name}"] for name in _CONTINENTS}
    for name, iri in continents.items():
        add(Triple(iri, RDF.type, DBP.Continent))
        add(Triple(iri, DBP.name, Literal(name)))
    eu = DBP["union/EU"]
    add(Triple(eu, RDF.type, DBP.Union))
    add(Triple(eu, DBP.name, Literal("EU")))

    language_sampler = ZipfSampler(languages, config.language_zipf, rng)
    observation_counter = 0
    for c in range(config.countries):
        country = DBP[f"country/Country{c}"]
        add(Triple(country, RDF.type, DBP.Country))
        add(Triple(country, DBP.name, Literal(f"Country{c}")))
        continent_name = rng.choice(_CONTINENTS)
        add(Triple(country, DBP.partOf, continents[continent_name]))
        if continent_name == "Europe" and rng.random() < config.union_fraction:
            add(Triple(country, DBP.partOf, eu))
        n_languages = pick_count(rng, config.languages_min,
                                 config.languages_max)
        for language in language_sampler.sample_distinct(n_languages):
            add(Triple(country, DBP.language, language))

        base_population = rng.randint(config.population_min,
                                      config.population_max)
        for offset, year in enumerate(config.years):
            population = round(base_population *
                               (1.0 + config.growth_rate) ** offset)
            observation = DBP[f"census/obs{observation_counter}"]
            observation_counter += 1
            add(Triple(observation, RDF.type, DBP.PopulationRecord))
            add(Triple(observation, DBP.ofCountry, country))
            add(Triple(observation, DBP.year, typed_literal(year)))
            add(Triple(observation, DBP.population,
                       typed_literal(population)))
    return graph
