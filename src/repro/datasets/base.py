"""Shared machinery for the synthetic dataset generators.

All generators are deterministic functions of their parameters plus a
seed; they emit into a fresh :class:`~repro.rdf.graph.Graph` (or a caller-
supplied one) and return it.  The Zipf sampler reproduces the skewed value
distributions real KGs exhibit — which is what makes the "triple count is
not a runtime proxy" demonstration interesting.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass
from itertools import accumulate
from typing import Sequence, TypeVar

from ..errors import DatasetError

__all__ = ["ZipfSampler", "check_positive", "pick_count"]

T = TypeVar("T")


class ZipfSampler:
    """Samples items with Zipf(s) popularity, deterministic under a seed."""

    def __init__(self, items: Sequence[T], exponent: float = 1.0,
                 rng: random.Random | None = None) -> None:
        if not items:
            raise DatasetError("ZipfSampler needs a non-empty item list")
        if exponent < 0:
            raise DatasetError("Zipf exponent must be non-negative")
        self._items = list(items)
        self._rng = rng if rng is not None else random.Random(0)
        weights = [1.0 / (rank ** exponent)
                   for rank in range(1, len(self._items) + 1)]
        self._cumulative = list(accumulate(weights))
        self._total = self._cumulative[-1]

    def sample(self) -> T:
        point = self._rng.random() * self._total
        index = bisect_right(self._cumulative, point)
        if index >= len(self._items):  # guard fp edge
            index = len(self._items) - 1
        return self._items[index]

    def sample_distinct(self, n: int) -> list[T]:
        """Up to ``n`` distinct items, still popularity-biased."""
        n = min(n, len(self._items))
        chosen: list[T] = []
        seen: set[int] = set()
        attempts = 0
        while len(chosen) < n and attempts < 50 * n:
            item = self.sample()
            key = id(item) if not isinstance(item, (str, int, tuple)) \
                else hash(item)
            if key not in seen:
                seen.add(key)
                chosen.append(item)
            attempts += 1
        for item in self._items:  # deterministic fill when unlucky
            if len(chosen) >= n:
                break
            key = id(item) if not isinstance(item, (str, int, tuple)) \
                else hash(item)
            if key not in seen:
                seen.add(key)
                chosen.append(item)
        return chosen


def check_positive(name: str, value: int) -> int:
    if value < 1:
        raise DatasetError(f"{name} must be >= 1, got {value}")
    return value


def pick_count(rng: random.Random, low: int, high: int) -> int:
    """Uniform integer in [low, high], validating the range."""
    if low > high or low < 0:
        raise DatasetError(f"invalid count range [{low}, {high}]")
    return rng.randint(low, high)
