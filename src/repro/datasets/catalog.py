"""The demo catalog: the three datasets with their query facets.

Mirrors the demonstration's *Configuration* step — "the three datasets
used for our demonstration (i.e., the LUBM, the DBpedia, and the Semantic
Web Dogfood datasets) will be presented along with the corresponding query
facets ... each accompanied by a high-level description and a
corresponding SPARQL query template."

Every dataset comes in three deterministic scale presets: ``tiny`` for
unit tests, ``small`` for CI-speed experiments, ``demo`` for the sizes
the benchmark harness reports on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import DatasetError
from ..rdf.graph import Graph
from ..cube.facet import AnalyticalFacet
from .dbpedia import DBPediaConfig, generate_dbpedia
from .lubm import LUBMConfig, generate_lubm
from .swdf import SWDFConfig, generate_swdf

__all__ = ["FacetSpec", "DatasetSpec", "LoadedDataset", "DATASET_NAMES",
           "SCALES", "load_dataset", "dataset_spec"]

SCALES = ("tiny", "small", "demo")


@dataclass(frozen=True)
class FacetSpec:
    """A named facet template attached to a dataset."""

    name: str
    description: str
    template: str

    def build(self) -> AnalyticalFacet:
        return AnalyticalFacet.from_query(self.name, self.template,
                                          description=self.description)


@dataclass(frozen=True)
class DatasetSpec:
    """A demo dataset: builders per scale plus its facet templates."""

    name: str
    description: str
    builders: dict[str, Callable[[], Graph]]
    facets: tuple[FacetSpec, ...]

    def facet_names(self) -> list[str]:
        return [f.name for f in self.facets]


@dataclass(frozen=True)
class LoadedDataset:
    """A built graph plus its instantiated facets."""

    spec: DatasetSpec
    scale: str
    graph: Graph
    facets: dict[str, AnalyticalFacet]

    @property
    def name(self) -> str:
        return self.spec.name

    def facet(self, name: str | None = None) -> AnalyticalFacet:
        """A facet by name; default is the dataset's first (headline) facet."""
        if name is None:
            name = self.spec.facets[0].name
        if name not in self.facets:
            raise DatasetError(
                f"dataset {self.name!r} has no facet {name!r}; available: "
                + ", ".join(sorted(self.facets)))
        return self.facets[name]


_DBPEDIA_PREFIX = "PREFIX dbp: <http://dbpedia.org/ontology/>\n"
_LUBM_PREFIX = "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n"
_SWDF_PREFIX = "PREFIX sw: <http://data.semanticweb.org/ns/>\n"

_DBPEDIA_FACETS = (
    FacetSpec(
        "population_by_language_year",
        "Total population per official language per census year "
        "(Example 1.1: 'total amount of French-speaking population').",
        _DBPEDIA_PREFIX + """
        SELECT ?lang ?year (SUM(?pop) AS ?total) WHERE {
          ?obs dbp:ofCountry ?country ;
               dbp:year ?year ;
               dbp:population ?pop .
          ?country dbp:language ?lang .
        } GROUP BY ?lang ?year
        """,
    ),
    FacetSpec(
        "population_cube",
        "The headline 3-dimensional cube: population by language, year, "
        "and continent.",
        _DBPEDIA_PREFIX + """
        SELECT ?lang ?year ?continent (SUM(?pop) AS ?total) WHERE {
          ?obs dbp:ofCountry ?country ;
               dbp:year ?year ;
               dbp:population ?pop .
          ?country dbp:language ?lang ;
                   dbp:partOf ?continent .
          ?continent a dbp:Continent .
        } GROUP BY ?lang ?year ?continent
        """,
    ),
    FacetSpec(
        "population_cube_4d",
        "Four dimensions (adds the country itself): the 16-view lattice "
        "used to show why full materialization is impractical.",
        _DBPEDIA_PREFIX + """
        SELECT ?country ?lang ?year ?continent (SUM(?pop) AS ?total) WHERE {
          ?obs dbp:ofCountry ?country ;
               dbp:year ?year ;
               dbp:population ?pop .
          ?country dbp:language ?lang ;
                   dbp:partOf ?continent .
          ?continent a dbp:Continent .
        } GROUP BY ?country ?lang ?year ?continent
        """,
    ),
    FacetSpec(
        "population_peak",
        "Largest single-country population per continent per year — a MAX "
        "facet exercising the order-statistic roll-up path.",
        _DBPEDIA_PREFIX + """
        SELECT ?continent ?year (MAX(?pop) AS ?peak) WHERE {
          ?obs dbp:ofCountry ?country ;
               dbp:year ?year ;
               dbp:population ?pop .
          ?country dbp:partOf ?continent .
          ?continent a dbp:Continent .
        } GROUP BY ?continent ?year
        """,
    ),
    FacetSpec(
        "population_avg",
        "Average country population per continent per year — exercises the "
        "algebraic AVG decomposition (sum+count materialization).",
        _DBPEDIA_PREFIX + """
        SELECT ?continent ?year (AVG(?pop) AS ?avgpop) WHERE {
          ?obs dbp:ofCountry ?country ;
               dbp:year ?year ;
               dbp:population ?pop .
          ?country dbp:partOf ?continent .
          ?continent a dbp:Continent .
        } GROUP BY ?continent ?year
        """,
    ),
)

_LUBM_FACETS = (
    FacetSpec(
        "students_by_department",
        "Student head-count per university, department, and student type.",
        _LUBM_PREFIX + """
        SELECT ?univ ?dept ?stype (COUNT(?student) AS ?n) WHERE {
          ?student ub:memberOf ?dept ;
                   a ?stype .
          ?dept ub:subOrganizationOf ?univ .
        } GROUP BY ?univ ?dept ?stype
        """,
    ),
    FacetSpec(
        "publications_by_rank",
        "Publication output per university, department, and faculty rank.",
        _LUBM_PREFIX + """
        SELECT ?univ ?dept ?rank (COUNT(?pub) AS ?n) WHERE {
          ?pub ub:publicationAuthor ?author .
          ?author ub:worksFor ?dept ;
                  a ?rank .
          ?dept ub:subOrganizationOf ?univ .
        } GROUP BY ?univ ?dept ?rank
        """,
    ),
)

_SWDF_FACETS = (
    FacetSpec(
        "papers_by_conference",
        "Accepted papers per conference series, year, and track.",
        _SWDF_PREFIX + """
        SELECT ?series ?year ?track (COUNT(?paper) AS ?n) WHERE {
          ?paper sw:presentedAt ?edition ;
                 sw:track ?track .
          ?edition sw:ofSeries ?series ;
                   sw:year ?year .
        } GROUP BY ?series ?year ?track
        """,
    ),
    FacetSpec(
        "papers_by_country",
        "Author-weighted paper counts per affiliation country, series and "
        "year — the multi-author duplication pitfall.",
        _SWDF_PREFIX + """
        SELECT ?country ?series ?year (COUNT(?paper) AS ?n) WHERE {
          ?paper sw:presentedAt ?edition ;
                 sw:author ?author .
          ?edition sw:ofSeries ?series ;
                   sw:year ?year .
          ?author sw:affiliation ?org .
          ?org sw:basedIn ?country .
        } GROUP BY ?country ?series ?year
        """,
    ),
)


def _dbpedia_builders() -> dict[str, Callable[[], Graph]]:
    return {
        "tiny": lambda: generate_dbpedia(DBPediaConfig(
            countries=12, years=(2018, 2019), seed=7)),
        "small": lambda: generate_dbpedia(DBPediaConfig(
            countries=40, years=tuple(range(2014, 2020)), seed=7)),
        "demo": lambda: generate_dbpedia(DBPediaConfig(
            countries=150, years=tuple(range(2000, 2020)), seed=7)),
    }


def _lubm_builders() -> dict[str, Callable[[], Graph]]:
    return {
        "tiny": lambda: generate_lubm(LUBMConfig(seed=7).scaled(0.12)),
        "small": lambda: generate_lubm(LUBMConfig(seed=7).scaled(0.35)),
        "demo": lambda: generate_lubm(LUBMConfig(universities=1, seed=7)),
    }


def _swdf_builders() -> dict[str, Callable[[], Graph]]:
    return {
        "tiny": lambda: generate_swdf(SWDFConfig(
            series=("ISWC", "ESWC"), years=(2018, 2019),
            papers_per_edition_min=8, papers_per_edition_max=15,
            authors_pool=60, organizations=15, seed=7)),
        "small": lambda: generate_swdf(SWDFConfig(
            series=("ISWC", "ESWC", "WWW"), years=tuple(range(2016, 2020)),
            papers_per_edition_min=15, papers_per_edition_max=30,
            authors_pool=150, organizations=40, seed=7)),
        "demo": lambda: generate_swdf(SWDFConfig(seed=7)),
    }


_CATALOG: dict[str, DatasetSpec] = {
    "dbpedia": DatasetSpec(
        name="dbpedia",
        description="Country / language / population cube (the paper's "
                    "Figure 1 running example, grown to census size).",
        builders=_dbpedia_builders(),
        facets=_DBPEDIA_FACETS,
    ),
    "lubm": DatasetSpec(
        name="lubm",
        description="LUBM-style university benchmark graph (Guo et al. "
                    "2005), regenerated natively.",
        builders=_lubm_builders(),
        facets=_LUBM_FACETS,
    ),
    "swdf": DatasetSpec(
        name="swdf",
        description="Semantic Web Dog Food-style scholarly metadata graph.",
        builders=_swdf_builders(),
        facets=_SWDF_FACETS,
    ),
}

DATASET_NAMES = tuple(sorted(_CATALOG))


def dataset_spec(name: str) -> DatasetSpec:
    """The catalog entry for a dataset name."""
    spec = _CATALOG.get(name)
    if spec is None:
        raise DatasetError(f"unknown dataset {name!r}; available: "
                           + ", ".join(DATASET_NAMES))
    return spec


def load_dataset(name: str, scale: str = "small") -> LoadedDataset:
    """Build a demo dataset at the given scale with all its facets."""
    spec = dataset_spec(name)
    builder = spec.builders.get(scale)
    if builder is None:
        raise DatasetError(f"unknown scale {scale!r}; available: "
                           + ", ".join(SCALES))
    graph = builder()
    facets = {f.name: f.build() for f in spec.facets}
    return LoadedDataset(spec=spec, scale=scale, graph=graph, facets=facets)
