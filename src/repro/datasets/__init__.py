"""Synthetic demo datasets: LUBM, DBpedia-like, and SWDF-like generators."""

from .base import ZipfSampler
from .catalog import DATASET_NAMES, SCALES, DatasetSpec, FacetSpec, \
    LoadedDataset, dataset_spec, load_dataset
from .dbpedia import DBP, DBPediaConfig, generate_dbpedia
from .lubm import UB, LUBMConfig, generate_lubm
from .swdf import SWDF, SWDFConfig, generate_swdf

__all__ = [
    "DATASET_NAMES", "DBP", "DBPediaConfig", "DatasetSpec", "FacetSpec",
    "LoadedDataset", "LUBMConfig", "SCALES", "SWDF", "SWDFConfig", "UB",
    "ZipfSampler", "dataset_spec", "generate_dbpedia", "generate_lubm",
    "generate_swdf", "load_dataset",
]
