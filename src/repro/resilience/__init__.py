"""Fault injection, transactional upkeep support, and consistency audits.

``failpoints`` is imported eagerly — it has no dependencies beyond
``repro.errors`` and is wired into the rdf/views hot paths.  The auditor
imports the sparql and views layers, which themselves import the graph
(and therefore this package's failpoints), so it is exposed lazily to
keep the import graph acyclic.
"""

from __future__ import annotations

from . import failpoints
from .failpoints import KNOWN_FAILPOINTS, Failpoint, arm, armed, \
    armed_names, disarm, fail_at, is_armed, reset, state, suppressed

__all__ = [
    "KNOWN_FAILPOINTS",
    "AuditReport",
    "ConsistencyAuditor",
    "Failpoint",
    "ViewAudit",
    "arm",
    "armed",
    "armed_names",
    "disarm",
    "fail_at",
    "failpoints",
    "is_armed",
    "reset",
    "state",
    "suppressed",
]

_AUDIT_NAMES = ("AuditReport", "ConsistencyAuditor", "ViewAudit")


def __getattr__(name: str):
    if name in _AUDIT_NAMES:
        from . import audit
        return getattr(audit, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
