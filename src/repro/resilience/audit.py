"""The consistency auditor: cross-checking views against ground truth.

A half-patched or bit-flipped view graph is worse than a stale one — it
answers *wrong*, not merely old.  The auditor recomputes each fresh
view's aggregation from the current base graph and compares it, group by
group (all groups or a seeded sample), with what the view graph actually
stores and with the maintainer's cached
:class:`~repro.views.maintenance.GroupIndex`.  Views that fail are
quarantined on the catalog: the router stops serving them (queries fall
back to the base graph, flagged ``degraded``) and the next maintenance
cycle or ``refresh_stale`` rebuilds them.

Stale views are skipped, not audited — they legitimately disagree with
the current base graph until maintenance runs.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Optional

from ..errors import ExpressionError
from ..obs import get_logger
from ..obs import metrics as _metrics
from ..obs import tracing as _tracing
from ..rdf.namespace import SOFOS
from ..rdf.terms import Term
from ..cube.view import COUNT_VAR, MEASURE_VAR, SUM_VAR, ViewDefinition
from ..sparql.values import to_number
from ..views.catalog import MaterializedView, ViewCatalog
from ..views.maintenance import ViewMaintainer
from ..views.materializer import dimension_predicate

__all__ = ["ViewAudit", "AuditReport", "ConsistencyAuditor"]

_LOG = get_logger("resilience.audit")
_REG = _metrics.registry()
_TRACER = _tracing.tracer()
_AUDIT_RUNS = _REG.counter(
    "audit_runs_total", "full consistency-audit passes over the catalog")
_AUDIT_CORRUPT = _REG.counter(
    "audit_corrupt_views_total", "views an audit found corrupt")


@dataclass(frozen=True)
class ViewAudit:
    """The audit outcome for one materialized view."""

    label: str
    status: str                    # "ok" | "skipped" | "corrupt"
    issues: tuple[str, ...] = ()
    groups_checked: int = 0
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class AuditReport:
    """Aggregated outcome of one :meth:`ConsistencyAuditor.audit` pass."""

    results: list[ViewAudit] = field(default_factory=list)
    quarantined: list[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def ok(self) -> list[ViewAudit]:
        return [r for r in self.results if r.status == "ok"]

    @property
    def corrupt(self) -> list[ViewAudit]:
        return [r for r in self.results if r.status == "corrupt"]

    @property
    def skipped(self) -> list[ViewAudit]:
        return [r for r in self.results if r.status == "skipped"]

    @property
    def clean(self) -> bool:
        return not self.corrupt

    def __repr__(self) -> str:
        return (f"<AuditReport {len(self.ok)} ok, {len(self.corrupt)} "
                f"corrupt, {len(self.skipped)} skipped>")


def _comparable(term: Optional[Term]):
    """A comparison key tolerant of numeric-representation differences."""
    if term is None:
        return None
    try:
        return to_number(term)
    except ExpressionError:
        return term


def _describe_key(key: tuple) -> str:
    if not key:
        return "()"
    return "(" + ", ".join("∅" if t is None else t.n3() for t in key) + ")"


class ConsistencyAuditor:
    """Verifies materialized views against recomputed ground truth.

    ``sample_groups`` bounds the per-group comparison work: when set, at
    most that many group keys (drawn by a ``seed``-deterministic sample)
    are compared in detail; group-count totals and the stored-encoding
    shape are always checked in full.  A wired ``maintainer`` adds a
    third leg: its cached group index is cross-checked against the view
    graph, catching index drift before it corrupts a future patch.
    """

    def __init__(self, catalog: ViewCatalog,
                 maintainer: ViewMaintainer | None = None, *,
                 sample_groups: int | None = None, seed: int = 0) -> None:
        self._catalog = catalog
        self._maintainer = maintainer
        self._sample_groups = sample_groups
        self._seed = seed

    def audit(self, quarantine: bool = True) -> AuditReport:
        """Audit every catalog view; optionally quarantine the corrupt ones."""
        with _TRACER.span("audit.run") as sp:
            report = self._audit(quarantine)
            sp.set_tags(ok=len(report.ok), corrupt=len(report.corrupt),
                        skipped=len(report.skipped),
                        quarantined=len(report.quarantined))
        _AUDIT_RUNS.inc()
        if _REG.enabled and report.corrupt:
            _AUDIT_CORRUPT.inc(len(report.corrupt))
        return report

    def _audit(self, quarantine: bool) -> AuditReport:
        report = AuditReport()
        current = self._catalog.base_version
        for entry in self._catalog:
            view = entry.definition
            if self._catalog.is_quarantined(view):
                report.results.append(ViewAudit(
                    label=view.label, status="skipped",
                    issues=("already quarantined",)))
                continue
            if entry.base_version != current:
                report.results.append(ViewAudit(
                    label=view.label, status="skipped",
                    issues=("stale (pending maintenance)",)))
                continue
            result = self.audit_view(entry)
            report.results.append(result)
            if result.status == "corrupt":
                _LOG.warning("audit found view %s corrupt: %s",
                             view.label, "; ".join(result.issues))
            if result.status == "corrupt" and quarantine:
                self._catalog.quarantine(view, "; ".join(result.issues))
                report.quarantined.append(view.label)
        return report

    def audit_view(self, entry: MaterializedView) -> ViewAudit:
        """Audit one view: graph vs recomputed truth vs cached index."""
        start = time.perf_counter()
        view = entry.definition
        graph = self._catalog.graph_of(view)
        issues: list[str] = []

        stored, key_ids = self._scan_view(view, graph, issues)
        expected = self._recompute(view)

        if len(stored) != len(expected):
            issues.append(
                f"group count mismatch: view stores {len(stored)} groups, "
                f"recomputation expects {len(expected)}")

        all_keys = sorted(set(stored) | set(expected), key=_describe_key)
        if self._sample_groups is not None \
                and len(all_keys) > self._sample_groups:
            rng = random.Random(self._seed)
            checked = rng.sample(all_keys, self._sample_groups)
        else:
            checked = all_keys
        for key in checked:
            have = stored.get(key)
            want = expected.get(key)
            if have is None:
                issues.append(f"missing group {_describe_key(key)}")
                continue
            if want is None:
                issues.append(f"phantom group {_describe_key(key)}")
                continue
            have_value, have_count = have
            want_value, want_count = want
            if _comparable(have_count) != _comparable(want_count):
                issues.append(
                    f"group {_describe_key(key)}: stored count "
                    f"{have_count.n3() if have_count else '∅'} != expected "
                    f"{want_count.n3() if want_count else '∅'}")
            if _comparable(have_value) != _comparable(want_value):
                issues.append(
                    f"group {_describe_key(key)}: stored aggregate "
                    f"{have_value.n3() if have_value else '∅'} != expected "
                    f"{want_value.n3() if want_value else '∅'}")

        if self._maintainer is not None:
            self._check_index(view, graph, stored, key_ids, issues)

        return ViewAudit(
            label=view.label,
            status="corrupt" if issues else "ok",
            issues=tuple(issues),
            groups_checked=len(checked),
            seconds=time.perf_counter() - start,
        )

    # -- the three legs ------------------------------------------------------

    def _scan_view(self, view: ViewDefinition, graph,
                   issues: list[str]) -> tuple[dict, dict]:
        """Decode the view graph's §3.1 encoding, tolerantly.

        Returns ``(stored, key_ids)``: group key terms → (value term or
        None, count term), plus the same keys mapped to their node for
        the index cross-check.  Structural violations (multiple values
        under one predicate, missing counts, duplicate keys, triples
        outside the encoding) land in ``issues`` rather than raising —
        a tampered graph must be *reported*, not crash the auditor.
        """
        is_avg = view.facet.aggregate.name == "AVG"
        value_pred = SOFOS.sum if is_avg else SOFOS.measure
        dim_preds = [dimension_predicate(v) for v in view.variables]
        stored: dict[tuple, tuple[Optional[Term], Optional[Term]]] = {}
        key_ids: dict[tuple, Term] = {}
        nodes = [t.s for t in graph.triples(p=SOFOS.view, o=view.iri)]
        accounted = 0
        for node in nodes:
            accounted += graph.count(s=node)
            key_parts = []
            for pred in dim_preds:
                values = list(graph.objects(node, pred))
                if len(values) > 1:
                    issues.append(
                        "group node stores multiple values for dimension "
                        + pred.n3())
                key_parts.append(values[0] if values else None)
            values = list(graph.objects(node, value_pred))
            if len(values) > 1:
                issues.append("group node stores multiple aggregates under "
                              + value_pred.n3())
            value = values[0] if values else None
            counts = list(graph.objects(node, SOFOS.groupCount))
            if len(counts) != 1:
                issues.append(f"group node stores {len(counts)} "
                              "sofos:groupCount values (expected 1)")
            count = counts[0] if counts else None
            key = tuple(key_parts)
            if key in stored:
                issues.append(f"duplicate group key {_describe_key(key)}")
                continue
            stored[key] = (value, count)
            key_ids[key] = node
        if accounted != len(graph):
            issues.append(
                f"view graph holds {len(graph) - accounted} triple(s) "
                "outside the §3.1 group encoding")
        return stored, key_ids

    def _recompute(self, view: ViewDefinition) -> dict:
        """Ground truth: re-run the materialization query on the base graph."""
        is_avg = view.facet.aggregate.name == "AVG"
        value_var = SUM_VAR if is_avg else MEASURE_VAR
        engine = self._catalog.base_engine
        table = engine.query(view.materialization_query())
        dim_idx = [table.variables.index(v) for v in view.variables]
        value_idx = table.variables.index(value_var)
        count_idx = table.variables.index(COUNT_VAR)
        expected: dict[tuple, tuple[Optional[Term], Optional[Term]]] = {}
        for row in table:
            key = tuple(row[i] for i in dim_idx)
            expected[key] = (row[value_idx], row[count_idx])
        return expected

    def _check_index(self, view: ViewDefinition, graph, stored: dict,
                     key_ids: dict, issues: list[str]) -> None:
        """Cross-check the maintainer's cached group index with the graph."""
        index = self._maintainer.group_index(view)
        if index is None:
            return
        lookup = graph.dictionary.lookup
        drift = False
        if len(index.groups) != len(stored):
            drift = True
        else:
            for key, state in index.groups.items():
                terms = tuple(None if tid is None
                              else graph.dictionary.decode(tid)
                              for tid in key)
                if terms not in stored or terms not in key_ids:
                    drift = True
                    break
                value, count = stored[terms]
                if lookup(key_ids[terms]) != state.node_id:
                    drift = True
                    break
                if count is None or lookup(count) != state.count_id:
                    drift = True
                    break
                if value is not None and lookup(value) != state.value_id:
                    drift = True
                    break
        if drift:
            issues.append("cached group index drifted from the view graph")
