"""Deterministic fault-injection registry.

Upkeep code calls :func:`fail_at` at named points; tests and the
robustness benchmark *arm* those points to inject an error, a simulated
crash, or a delay on a chosen hit.  When nothing is armed the call is a
single falsy-dict check, so production paths pay no measurable cost.

The registry is process-global and deterministic: a failpoint fires on
exactly the hit its arming asked for (``skip`` hits pass through first,
then ``count`` firings, then it disarms itself).  Rollback internals run
under :func:`suppressed` so that undoing a failed window cannot itself
trip the fault that caused it.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from ..errors import FailpointError, ResilienceError, SimulatedCrash
from ..obs import get_logger
from ..obs import metrics as _metrics

__all__ = [
    "KNOWN_FAILPOINTS",
    "MODES",
    "Failpoint",
    "arm",
    "armed",
    "armed_names",
    "disarm",
    "fail_at",
    "is_armed",
    "reset",
    "state",
    "suppressed",
]

#: Supported failure modes.  ``error`` raises :class:`FailpointError`,
#: ``crash`` raises :class:`SimulatedCrash` (a ``BaseException``), and
#: ``delay`` sleeps for ``delay_seconds`` then continues.
MODES = ("error", "crash", "delay")

#: Every failpoint compiled into the library, for discovery by tests and
#: the robustness benchmark.  Arming a name outside this list still
#: works (it simply never fires), but schedules drawn from this tuple
#: are guaranteed to hit live code.
KNOWN_FAILPOINTS = (
    "graph.add_ids_bulk",
    "graph.remove_ids_bulk",
    "maintenance.synchronize.window",
    "maintenance.patch.before_apply",
    "maintenance.patch.between_bulk_ops",
    "catalog.materialize_all",
    "catalog.materialize.view",
    "catalog.refresh",
    "catalog.refresh_stale",
    "persistence.save.dataset_tmp",
    "persistence.save.between_files",
    "persistence.save.manifest_tmp",
    "persistence.load",
)


@dataclass
class Failpoint:
    """Arming state of one named failpoint."""

    name: str
    mode: str = "error"
    skip: int = 0                 # hits that pass through before firing
    count: int | None = 1         # firings before auto-disarm (None = forever)
    delay_seconds: float = 0.0    # only used by mode "delay"
    hits: int = 0                 # total fail_at() calls seen while armed
    fired: int = 0                # times the failure actually triggered


_registry: dict[str, Failpoint] = {}
_suppress = 0

_LOG = get_logger("resilience.failpoints")
_FIRED = _metrics.registry().counter(
    "resilience_failpoints_fired_total",
    "injected failures actually triggered, by point and mode",
    labels=("name", "mode"))


def fail_at(name: str) -> None:
    """Trigger the failpoint ``name`` if it is armed.

    The disarmed fast path is one truthiness check on the (empty)
    registry dict; instrumented hot loops stay hot.
    """
    if not _registry or _suppress:
        return
    fp = _registry.get(name)
    if fp is None:
        return
    fp.hits += 1
    if fp.hits <= fp.skip:
        return
    fp.fired += 1
    _FIRED.inc(labels=(name, fp.mode))
    _LOG.debug("failpoint %s fired (mode=%s, firing %d)", name, fp.mode,
               fp.fired)
    if fp.count is not None and fp.fired >= fp.count:
        del _registry[name]
    if fp.mode == "delay":
        time.sleep(fp.delay_seconds)
        return
    if fp.mode == "crash":
        raise SimulatedCrash(name)
    raise FailpointError(name)


def arm(name: str, mode: str = "error", *, skip: int = 0,
        count: int | None = 1, delay_seconds: float = 0.0) -> Failpoint:
    """Arm failpoint ``name``.

    ``skip`` hits pass through untouched, then the point fires ``count``
    times (``None`` = every hit forever) before disarming itself.
    Re-arming an armed name replaces its state.
    """
    if mode not in MODES:
        raise ResilienceError(
            f"unknown failpoint mode {mode!r}; expected one of {MODES}")
    if skip < 0:
        raise ResilienceError(f"failpoint skip must be >= 0, got {skip}")
    if count is not None and count < 1:
        raise ResilienceError(
            f"failpoint count must be >= 1 or None, got {count}")
    if delay_seconds < 0:
        raise ResilienceError(
            f"failpoint delay must be >= 0, got {delay_seconds}")
    fp = Failpoint(name=name, mode=mode, skip=skip, count=count,
                   delay_seconds=delay_seconds)
    _registry[name] = fp
    return fp


def disarm(name: str) -> bool:
    """Disarm ``name``; returns whether it was armed."""
    return _registry.pop(name, None) is not None


def reset() -> None:
    """Disarm every failpoint and clear suppression (test teardown)."""
    global _suppress
    _registry.clear()
    _suppress = 0


def is_armed(name: str) -> bool:
    return name in _registry


def state(name: str) -> Failpoint | None:
    """The live :class:`Failpoint` for ``name``, or None if disarmed."""
    return _registry.get(name)


def armed_names() -> tuple[str, ...]:
    return tuple(sorted(_registry))


@contextmanager
def armed(name: str, mode: str = "error", *, skip: int = 0,
          count: int | None = 1,
          delay_seconds: float = 0.0) -> Iterator[Failpoint]:
    """Arm ``name`` for the duration of a ``with`` block."""
    fp = arm(name, mode, skip=skip, count=count, delay_seconds=delay_seconds)
    try:
        yield fp
    finally:
        if _registry.get(name) is fp:
            del _registry[name]


@contextmanager
def suppressed() -> Iterator[None]:
    """Disable all failpoints inside the block (re-entrant).

    Rollback code runs under this so that restoring a snapshot cannot
    trip the very fault it is recovering from.
    """
    global _suppress
    _suppress += 1
    try:
        yield
    finally:
        _suppress -= 1
